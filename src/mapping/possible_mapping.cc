#include "mapping/possible_mapping.h"

#include <algorithm>

#include "common/random.h"

namespace uxm {

int PossibleMapping::CorrespondenceCount() const {
  int n = 0;
  for (SchemaNodeId s : target_to_source) {
    if (s != kInvalidSchemaNode) ++n;
  }
  return n;
}

std::vector<SchemaNodeId> PossibleMapping::MatchedTargets() const {
  std::vector<SchemaNodeId> out;
  for (size_t t = 0; t < target_to_source.size(); ++t) {
    if (target_to_source[t] != kInvalidSchemaNode) {
      out.push_back(static_cast<SchemaNodeId>(t));
    }
  }
  return out;
}

void PossibleMappingSet::NormalizeProbabilities() {
  if (mappings_.empty()) return;
  double total = 0.0;
  for (const PossibleMapping& m : mappings_) total += m.score;
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(mappings_.size());
    for (PossibleMapping& m : mappings_) m.probability = uniform;
    return;
  }
  for (PossibleMapping& m : mappings_) m.probability = m.score / total;
}

double PossibleMappingSet::OverlapRatio(MappingId a, MappingId b) const {
  const PossibleMapping& ma = mappings_[static_cast<size_t>(a)];
  const PossibleMapping& mb = mappings_[static_cast<size_t>(b)];
  int inter = 0;
  int uni = 0;
  const size_t n = ma.target_to_source.size();
  for (size_t t = 0; t < n; ++t) {
    const SchemaNodeId sa = ma.target_to_source[t];
    const SchemaNodeId sb = mb.target_to_source[t];
    const bool ha = sa != kInvalidSchemaNode;
    const bool hb = sb != kInvalidSchemaNode;
    if (ha && hb) {
      if (sa == sb) {
        ++inter;
        ++uni;
      } else {
        uni += 2;
      }
    } else if (ha || hb) {
      ++uni;
    }
  }
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double PossibleMappingSet::AverageOverlapRatio(int sample_pairs) const {
  const int n = size();
  if (n < 2) return 1.0;
  const int64_t all_pairs = static_cast<int64_t>(n) * (n - 1) / 2;
  double sum = 0.0;
  if (sample_pairs <= 0 || all_pairs <= sample_pairs) {
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        sum += OverlapRatio(i, j);
      }
    }
    return sum / static_cast<double>(all_pairs);
  }
  Rng rng(0xa11ce);
  for (int k = 0; k < sample_pairs; ++k) {
    const int i = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n)));
    int j = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n - 1)));
    if (j >= i) ++j;
    sum += OverlapRatio(i, j);
  }
  return sum / static_cast<double>(sample_pairs);
}

size_t PossibleMappingSet::NaiveStorageBytes() const {
  size_t bytes = 0;
  for (const PossibleMapping& m : mappings_) {
    bytes += sizeof(double);  // probability/score
    bytes += static_cast<size_t>(m.CorrespondenceCount()) *
             (2 * sizeof(SchemaNodeId));
  }
  return bytes;
}

std::string PossibleMappingSet::MappingToString(MappingId id) const {
  const PossibleMapping& m = mappings_[static_cast<size_t>(id)];
  std::string out;
  for (size_t t = 0; t < m.target_to_source.size(); ++t) {
    const SchemaNodeId s = m.target_to_source[t];
    if (s == kInvalidSchemaNode) continue;
    out += source_->path(s);
    out += " ~ ";
    out += target_->path(static_cast<SchemaNodeId>(t));
    out += '\n';
  }
  return out;
}

}  // namespace uxm
