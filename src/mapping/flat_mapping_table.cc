#include "mapping/flat_mapping_table.h"

namespace uxm {

FlatMappingTable FlatMappingTable::Build(const PossibleMappingSet& set,
                                         std::vector<SchemaNodeId>* source_for,
                                         std::vector<double>* probability) {
  FlatMappingTable table;
  table.num_mappings = static_cast<uint32_t>(set.size());
  table.num_targets =
      set.empty() ? 0 : static_cast<uint32_t>(set.target().size());
  source_for->assign(
      static_cast<size_t>(table.num_mappings) * table.num_targets,
      kInvalidSchemaNode);
  probability->clear();
  probability->reserve(table.num_mappings);
  for (MappingId mid = 0; mid < set.size(); ++mid) {
    const PossibleMapping& m = set.mapping(mid);
    SchemaNodeId* row =
        source_for->data() +
        static_cast<size_t>(mid) * static_cast<size_t>(table.num_targets);
    const size_t n = m.target_to_source.size() <= table.num_targets
                         ? m.target_to_source.size()
                         : table.num_targets;
    for (size_t t = 0; t < n; ++t) row[t] = m.target_to_source[t];
    probability->push_back(m.probability);
  }
  table.source_for = *source_for;
  table.probability = *probability;
  return table;
}

bool IsRowRelevant(const FlatMappingTable& table, MappingId mid,
                   const std::vector<std::vector<SchemaNodeId>>& embeddings) {
  const SchemaNodeId* row = table.Row(mid);
  for (const auto& emb : embeddings) {
    bool all = true;
    for (SchemaNodeId t : emb) {
      if (t != kInvalidSchemaNode &&
          row[static_cast<size_t>(t)] == kInvalidSchemaNode) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace uxm
