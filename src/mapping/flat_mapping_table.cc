#include "mapping/flat_mapping_table.h"

namespace uxm {

FlatMappingTable FlatMappingTable::Build(const PossibleMappingSet& set) {
  FlatMappingTable table;
  table.num_mappings = static_cast<uint32_t>(set.size());
  table.num_targets =
      set.empty() ? 0 : static_cast<uint32_t>(set.target().size());
  table.source_for.assign(
      static_cast<size_t>(table.num_mappings) * table.num_targets,
      kInvalidSchemaNode);
  table.probability.reserve(table.num_mappings);
  for (MappingId mid = 0; mid < set.size(); ++mid) {
    const PossibleMapping& m = set.mapping(mid);
    SchemaNodeId* row =
        table.source_for.data() +
        static_cast<size_t>(mid) * static_cast<size_t>(table.num_targets);
    const size_t n = m.target_to_source.size() <= table.num_targets
                         ? m.target_to_source.size()
                         : table.num_targets;
    for (size_t t = 0; t < n; ++t) row[t] = m.target_to_source[t];
    table.probability.push_back(m.probability);
  }
  return table;
}

}  // namespace uxm
