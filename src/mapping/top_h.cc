#include "mapping/top_h.h"

#include <algorithm>
#include <queue>
#include <set>

#include "mapping/partition.h"

namespace uxm {

namespace {

/// Converts a ranked assignment over `problem` into a PossibleMapping on
/// the full schemas.
PossibleMapping ToMapping(const AssignmentProblem& problem,
                          const RankedAssignment& ranked, int target_size) {
  PossibleMapping m;
  m.target_to_source.assign(static_cast<size_t>(target_size),
                            kInvalidSchemaNode);
  m.score = ranked.value;
  for (int32_t r = 0; r < problem.num_rows; ++r) {
    const int32_t c = ranked.row_to_col[static_cast<size_t>(r)];
    if (c < 0 || problem.IsNullCol(c)) continue;
    const SchemaNodeId tgt = problem.col_target[static_cast<size_t>(c)];
    m.target_to_source[static_cast<size_t>(tgt)] =
        problem.row_source[static_cast<size_t>(r)];
  }
  return m;
}

/// Lazy top-h merge of two sorted-descending lists of values: returns up
/// to h (i, j) index pairs with the largest sums, sorted descending.
std::vector<std::pair<int, int>> MergeTwo(const std::vector<double>& a,
                                          const std::vector<double>& b,
                                          int h) {
  std::vector<std::pair<int, int>> out;
  if (a.empty() || b.empty()) return out;
  using Item = std::pair<double, std::pair<int, int>>;
  std::priority_queue<Item> heap;
  std::set<std::pair<int, int>> seen;
  heap.push({a[0] + b[0], {0, 0}});
  seen.insert({0, 0});
  while (!heap.empty() && static_cast<int>(out.size()) < h) {
    const auto [sum, ij] = heap.top();
    heap.pop();
    out.push_back(ij);
    const auto [i, j] = ij;
    if (i + 1 < static_cast<int>(a.size()) && seen.insert({i + 1, j}).second) {
      heap.push({a[static_cast<size_t>(i) + 1] + b[static_cast<size_t>(j)],
                 {i + 1, j}});
    }
    if (j + 1 < static_cast<int>(b.size()) && seen.insert({i, j + 1}).second) {
      heap.push({a[static_cast<size_t>(i)] + b[static_cast<size_t>(j) + 1],
                 {i, j + 1}});
    }
  }
  return out;
}

}  // namespace

std::vector<std::vector<int>> TopHCombinations(
    const std::vector<std::vector<double>>& lists, int h) {
  std::vector<std::vector<int>> out;
  if (h <= 0) return out;
  for (const auto& list : lists) {
    if (list.empty()) return out;  // no combination exists
  }
  if (lists.empty()) {
    out.push_back({});
    return out;
  }
  // Fold left: maintain the top-h prefix combinations and their sums.
  // prefix[k] = (sum, chain index into previous prefix, index into list).
  struct Entry {
    double sum;
    int prev;   // index into previous round's entries (-1 for the first)
    int choice;
  };
  std::vector<std::vector<Entry>> rounds;
  {
    std::vector<Entry> first;
    const int take = std::min<int>(h, static_cast<int>(lists[0].size()));
    first.reserve(static_cast<size_t>(take));
    for (int i = 0; i < take; ++i) {
      first.push_back({lists[0][static_cast<size_t>(i)], -1, i});
    }
    rounds.push_back(std::move(first));
  }
  for (size_t l = 1; l < lists.size(); ++l) {
    std::vector<double> prefix_sums;
    prefix_sums.reserve(rounds.back().size());
    for (const Entry& e : rounds.back()) prefix_sums.push_back(e.sum);
    const auto pairs = MergeTwo(prefix_sums, lists[l], h);
    std::vector<Entry> next;
    next.reserve(pairs.size());
    for (const auto& [i, j] : pairs) {
      next.push_back({prefix_sums[static_cast<size_t>(i)] +
                          lists[l][static_cast<size_t>(j)],
                      i, j});
    }
    rounds.push_back(std::move(next));
  }
  // Reconstruct index tuples by walking the chains backwards.
  const auto& last = rounds.back();
  out.reserve(last.size());
  for (size_t k = 0; k < last.size(); ++k) {
    std::vector<int> tuple(lists.size());
    int idx = static_cast<int>(k);
    for (size_t l = lists.size(); l-- > 0;) {
      const Entry& e = rounds[l][static_cast<size_t>(idx)];
      tuple[l] = e.choice;
      idx = e.prev;
    }
    out.push_back(std::move(tuple));
  }
  return out;
}

Result<PossibleMappingSet> TopHGenerator::Generate(
    const SchemaMatching& matching) const {
  if (options_.h <= 0) return Status::InvalidArgument("h must be positive");
  last_partition_count_ = 0;
  if (options_.strategy == TopHStrategy::kMurty) {
    return GenerateMurty(matching);
  }
  return GeneratePartitioned(matching);
}

Result<PossibleMappingSet> TopHGenerator::GenerateMurty(
    const SchemaMatching& matching) const {
  const AssignmentProblem problem = AssignmentProblem::FromMatching(
      matching, options_.full_bipartite_for_murty);
  MurtyRanker ranker(problem, options_.murty);
  UXM_ASSIGN_OR_RETURN(std::vector<RankedAssignment> ranked,
                       ranker.Rank(options_.h));
  PossibleMappingSet set(matching.source_ptr(), matching.target_ptr());
  for (const RankedAssignment& ra : ranked) {
    set.Add(ToMapping(problem, ra, matching.target().size()));
  }
  set.NormalizeProbabilities();
  return set;
}

Result<PossibleMappingSet> TopHGenerator::GeneratePartitioned(
    const SchemaMatching& matching) const {
  PossibleMappingSet set(matching.source_ptr(), matching.target_ptr());
  const std::vector<SchemaMatching> parts = PartitionMatching(matching);
  last_partition_count_ = static_cast<int>(parts.size());
  if (parts.empty()) {
    // No correspondences at all: the only mapping is the empty one.
    PossibleMapping empty;
    empty.target_to_source.assign(
        static_cast<size_t>(matching.target().size()), kInvalidSchemaNode);
    set.Add(std::move(empty));
    set.NormalizeProbabilities();
    return set;
  }

  // Rank each partition independently (bipartite restricted to the
  // partition's matched elements only — this is where the speedup lives).
  std::vector<AssignmentProblem> problems;
  std::vector<std::vector<RankedAssignment>> rankings;
  problems.reserve(parts.size());
  rankings.reserve(parts.size());
  for (const SchemaMatching& part : parts) {
    problems.push_back(AssignmentProblem::FromMatching(
        part, /*include_all_elements=*/false));
    MurtyRanker ranker(problems.back(), options_.murty);
    UXM_ASSIGN_OR_RETURN(std::vector<RankedAssignment> ranked,
                         ranker.Rank(options_.h));
    rankings.push_back(std::move(ranked));
  }

  // Merge: global top-h over sums of per-partition values (Algorithm 5).
  std::vector<std::vector<double>> value_lists;
  value_lists.reserve(rankings.size());
  for (const auto& ranked : rankings) {
    std::vector<double> values;
    values.reserve(ranked.size());
    for (const RankedAssignment& ra : ranked) values.push_back(ra.value);
    value_lists.push_back(std::move(values));
  }
  const std::vector<std::vector<int>> combos =
      TopHCombinations(value_lists, options_.h);

  const int nt = matching.target().size();
  for (const auto& combo : combos) {
    PossibleMapping m;
    m.target_to_source.assign(static_cast<size_t>(nt), kInvalidSchemaNode);
    double score = 0.0;
    for (size_t p = 0; p < combo.size(); ++p) {
      const RankedAssignment& ra =
          rankings[p][static_cast<size_t>(combo[p])];
      score += ra.value;
      const AssignmentProblem& problem = problems[p];
      for (int32_t r = 0; r < problem.num_rows; ++r) {
        const int32_t c = ra.row_to_col[static_cast<size_t>(r)];
        if (c < 0 || problem.IsNullCol(c)) continue;
        const SchemaNodeId tgt = problem.col_target[static_cast<size_t>(c)];
        m.target_to_source[static_cast<size_t>(tgt)] =
            problem.row_source[static_cast<size_t>(r)];
      }
    }
    m.score = score;
    set.Add(std::move(m));
  }
  set.NormalizeProbabilities();
  return set;
}

}  // namespace uxm
