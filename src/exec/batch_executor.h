// Parallel batch PTQ execution. A batch is a list of {annotated document,
// twig text} items — each bound to a prepared schema pair — fanned across
// a fixed thread pool, the shape of a production query front-end: pairs
// are prepared once and then serve many queries over many documents.
//
// The executor owns only the pool. Everything a worker needs to evaluate
// an item travels WITH the item (its pair carries the mapping set, block
// tree and plan compiler), so one executor serves heterogeneous batches
// spanning several schema pairs, and a re-preparation never needs to
// tear the pool down. Items whose pair is null inherit the Run call's
// default pair.
//
// Concurrency model: every pair's products are immutable and shared
// read-only by every worker; each item is evaluated through the one
// ExecutionDriver protocol (plan cache, early-termination top-k, result
// cache). Items are claimed off an atomic cursor for dynamic load
// balancing, and every answer is written to its input slot, so results
// are always in input order and bit-identical regardless of thread count
// or cache state.
#ifndef UXM_EXEC_BATCH_EXECUTOR_H_
#define UXM_EXEC_BATCH_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/result_cache.h"
#include "common/arena.h"
#include "common/status.h"
#include "plan/driver.h"
#include "plan/prepared_pair.h"
#include "query/annotated_document.h"
#include "query/ptq.h"

namespace uxm {

class ThreadPool;

/// \brief One unit of batch work: a twig query against a document.
struct BatchQueryItem {
  const AnnotatedDocument* doc = nullptr;  ///< must outlive the Run call
  std::string twig;                        ///< target-schema twig text
  /// Per-item top-k override; 0 inherits the executor's PtqOptions.
  int top_k = 0;
  /// Per-item result-cache epoch override; 0 inherits the run's
  /// BatchCacheContext epoch. Corpus runs set it so every document's
  /// answers are keyed under that document's own registration epoch
  /// (facade epochs start at 1, so 0 is never a real epoch).
  uint64_t epoch = 0;
  /// The pair to evaluate under; null inherits the Run call's default
  /// pair. Corpus runs set it per document, which is what lets one batch
  /// span documents prepared under different schema pairs.
  std::shared_ptr<const PreparedSchemaPair> pair;
  /// Upper bound on the probability of any answer this item can produce
  /// (see QueryPlan::AnswerUpperBound) — the item's dispatch priority.
  /// Workers claim items in index order, so a caller encodes priority by
  /// sorting the batch descending on this field (the corpus scheduler
  /// does); with a BatchRunControl threshold bound, it is also the bound
  /// the driver cancels against. Ignored without a control.
  double priority = 0.0;
  /// Per-item cancel threshold override; null inherits the run's
  /// BatchRunControl threshold. The cross-twig corpus scheduler mixes
  /// items of several twigs into one dispatch and each twig races its
  /// OWN top-k, so each item must cancel against its own twig's
  /// threshold. Ignored without a control.
  const std::atomic<double>* cancel_threshold = nullptr;
};

/// \brief Optional per-Run hooks for bound-driven scheduling (the corpus
/// Threshold-Algorithm driver). Both fields are optional.
struct BatchRunControl {
  /// Shared, monotonically rising answer-probability threshold: items
  /// whose priority (upper bound) falls below it abort with
  /// Status::Cancelled instead of evaluating (see plan/driver.h).
  const std::atomic<double>* cancel_threshold = nullptr;
  /// Called once per completed item, ON THE WORKER THREAD that ran it,
  /// with the item's batch index and its result — before Run returns.
  /// The corpus scheduler uses it to fold finished answers into its
  /// global top-k and raise the threshold mid-run, which is what lets
  /// later items of the same dispatch abort in flight. Must be
  /// thread-safe; must not call back into this executor.
  std::function<void(size_t, const Result<PtqResult>&)> on_item_done;
  /// Shared deadline/evaluation budget of an anytime corpus run
  /// (corpus/run_budget.h); copied into every item's DriverRequest. Null
  /// = unbudgeted. See DriverRequest::budget for the polling and
  /// cache-poisoning rules it triggers.
  RunBudget* budget = nullptr;
};

/// \brief Executor configuration.
struct BatchExecutorOptions {
  /// Worker threads; 0 = ThreadPool::DefaultThreadCount().
  int num_threads = 0;
  /// Evaluate with Algorithm 4 (block tree) or Algorithm 3 (basic).
  bool use_block_tree = true;
  /// Base evaluation options applied to every item.
  PtqOptions ptq;
};

/// \brief Per-Run result-cache binding. The epoch is whatever counter the
/// owner bumps on Prepare/AttachDocument: entries are keyed under it, so
/// a run that raced an invalidation inserts under the stale epoch and can
/// never satisfy lookups issued after the swap.
struct BatchCacheContext {
  ResultCache* results = nullptr;
  uint64_t epoch = 0;
};

/// \brief Per-run execution statistics.
struct BatchRunReport {
  int num_threads = 0;
  /// Items evaluated by each worker (size == num_threads). Sums to the
  /// batch size; the spread shows load-balancing quality.
  std::vector<int> items_per_thread;
  /// Compiled-plan cache hits over this run's items (a hit skips parse
  /// and schema embedding).
  int query_cache_hits = 0;
  /// Result-cache hits/misses over this run's items (both 0 when Run had
  /// no cache bound). A hit skips evaluation entirely.
  int result_cache_hits = 0;
  int result_cache_misses = 0;
  /// Work units never consumed thanks to early-termination top-k, summed
  /// over this run's items (0 for untruncated/top-k-less traffic).
  int mappings_pruned = 0;
  /// Items aborted in flight by a BatchRunControl cancel threshold
  /// (their result slots hold Status::Cancelled).
  int items_aborted = 0;
  /// The subset of items_aborted whose abort happened INSIDE the
  /// evaluation kernel (the threshold overtook the item after its
  /// evaluation had started), as opposed to the driver's cheap
  /// pre-evaluation checks.
  int items_aborted_in_kernel = 0;
  /// Cumulative cache state sampled at the end of the run: the default
  /// pair's compiler, or the first item's pair when the run had no
  /// default (e.g. corpus fan-outs). Zero-valued only for empty
  /// pair-less runs.
  QueryCompilerStats compiler;
  ResultCacheStats result_cache;
};

/// \brief Fans a batch of PTQs out across a fixed thread pool.
///
/// Run keeps all per-run state (cursor, scratch, result slots) on its own
/// stack, so concurrent Run calls on one executor are safe — they simply
/// share the pool's workers. No fairness is promised, though: the pool's
/// queue is FIFO, so a small Run issued while a large one occupies every
/// worker completes its items on the calling thread but still waits for
/// the earlier batch before returning. Latency-sensitive callers should
/// use their own executor.
class BatchQueryExecutor {
 public:
  explicit BatchQueryExecutor(BatchExecutorOptions options = {});
  ~BatchQueryExecutor();

  BatchQueryExecutor(const BatchQueryExecutor&) = delete;
  BatchQueryExecutor& operator=(const BatchQueryExecutor&) = delete;

  /// Evaluates every item and returns the answers in input order: slot i
  /// of the returned vector is item i's result. Items without their own
  /// pair run under `default_pair` (an item with neither errors only its
  /// own slot, as do parse errors and null documents). When `report` is
  /// non-null it receives this run's statistics. When `cache` binds a
  /// ResultCache, hits skip evaluation and successful answers are
  /// inserted keyed under the item's epoch (or cache->epoch).
  /// `control` (optional) threads the corpus scheduler's cancel
  /// threshold and completion hook through the run (see BatchRunControl).
  std::vector<Result<PtqResult>> Run(
      const std::vector<BatchQueryItem>& batch,
      const std::shared_ptr<const PreparedSchemaPair>& default_pair,
      BatchRunReport* report = nullptr,
      const BatchCacheContext* cache = nullptr,
      const BatchRunControl* control = nullptr) const;

  int num_threads() const;

  /// The configuration this executor was built with (the corpus
  /// scheduler derives per-item bounds from options().ptq.top_k).
  const BatchExecutorOptions& options() const { return options_; }

 private:
  friend class ScratchLease;

  /// Checks an arena out of the pool (creating one if empty) / back in.
  /// Leases span one worker slot's whole claim loop, so an arena is only
  /// ever touched by one thread at a time and its capacity — grown to the
  /// workload's high-water mark — is recycled across Runs.
  std::unique_ptr<MonotonicScratch> AcquireScratch() const;
  void ReleaseScratch(std::unique_ptr<MonotonicScratch> scratch) const;

  BatchExecutorOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex scratch_mu_;
  mutable std::vector<std::unique_ptr<MonotonicScratch>> scratch_pool_;
};

}  // namespace uxm

#endif  // UXM_EXEC_BATCH_EXECUTOR_H_
