// Parallel batch PTQ execution. A batch is a list of {annotated document,
// twig text} pairs evaluated against ONE prepared (mapping set, block
// tree) pair — the shape of a production query front-end, where the
// integration system is prepared once and then serves many queries over
// many documents.
//
// Concurrency model: the PossibleMappingSet and BlockTree are immutable
// after Prepare and are shared read-only by every worker, as are the two
// caches: a QueryCompiler (parse + schema embedding + mapping filtering
// computed once per distinct twig, shared across threads AND requests)
// and an optional sharded ResultCache of whole PTQ answers. Items are
// claimed off an atomic cursor for dynamic load balancing, and every
// answer is written to its input slot, so results are always in input
// order and bit-identical regardless of thread count or cache state.
#ifndef UXM_EXEC_BATCH_EXECUTOR_H_
#define UXM_EXEC_BATCH_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blocktree/block_tree.h"
#include "cache/query_compiler.h"
#include "cache/result_cache.h"
#include "common/status.h"
#include "mapping/possible_mapping.h"
#include "query/annotated_document.h"
#include "query/ptq.h"

namespace uxm {

class ThreadPool;

/// \brief One unit of batch work: a twig query against a document.
struct BatchQueryItem {
  const AnnotatedDocument* doc = nullptr;  ///< must outlive the Run call
  std::string twig;                        ///< target-schema twig text
  /// Per-item top-k override; 0 inherits the executor's PtqOptions.
  int top_k = 0;
  /// Per-item result-cache epoch override; 0 inherits the run's
  /// BatchCacheContext epoch. Corpus runs set it so every document's
  /// answers are keyed under that document's own registration epoch
  /// (facade epochs start at 1, so 0 is never a real epoch).
  uint64_t epoch = 0;
};

/// \brief Executor configuration.
struct BatchExecutorOptions {
  /// Worker threads; 0 = ThreadPool::DefaultThreadCount().
  int num_threads = 0;
  /// Evaluate with Algorithm 4 (block tree) or Algorithm 3 (basic).
  bool use_block_tree = true;
  /// Base evaluation options applied to every item.
  PtqOptions ptq;
  /// Compiled-query cache; nullptr makes the executor create its own over
  /// its mapping set. Inject a shared one (as the facade does) so
  /// single-shot Query calls and batches reuse each other's compilations.
  std::shared_ptr<QueryCompiler> compiler;
};

/// \brief Per-Run result-cache binding. The epoch is whatever counter the
/// owner bumps on Prepare/AttachDocument: entries are keyed under it, so
/// a run that raced an invalidation inserts under the stale epoch and can
/// never satisfy lookups issued after the swap.
struct BatchCacheContext {
  ResultCache* results = nullptr;
  uint64_t epoch = 0;
};

/// \brief Per-run execution statistics.
struct BatchRunReport {
  int num_threads = 0;
  /// Items evaluated by each worker (size == num_threads). Sums to the
  /// batch size; the spread shows load-balancing quality.
  std::vector<int> items_per_thread;
  /// Compiled-query cache hits over this run's items (a hit skips parse,
  /// schema embedding, and mapping filtering).
  int query_cache_hits = 0;
  /// Result-cache hits/misses over this run's items (both 0 when Run had
  /// no cache bound). A hit skips evaluation entirely.
  int result_cache_hits = 0;
  int result_cache_misses = 0;
  /// Cumulative cache state sampled at the end of the run.
  QueryCompilerStats compiler;
  ResultCacheStats result_cache;
};

/// \brief Fans a batch of PTQs out across a fixed thread pool.
///
/// Run keeps all per-run state (cursor, scratch, result slots) on its own
/// stack, so concurrent Run calls on one executor are safe — they simply
/// share the pool's workers. No fairness is promised, though: the pool's
/// queue is FIFO, so a small Run issued while a large one occupies every
/// worker completes its items on the calling thread but still waits for
/// the earlier batch before returning. Latency-sensitive callers should
/// use their own executor. The referenced mapping set / block tree must
/// outlive the executor and stay unmodified while Run is in flight.
class BatchQueryExecutor {
 public:
  /// `tree` may be null iff options.use_block_tree is false.
  BatchQueryExecutor(const PossibleMappingSet* mappings,
                     const BlockTree* tree,
                     BatchExecutorOptions options = {});
  ~BatchQueryExecutor();

  BatchQueryExecutor(const BatchQueryExecutor&) = delete;
  BatchQueryExecutor& operator=(const BatchQueryExecutor&) = delete;

  /// Evaluates every item and returns the answers in input order: slot i
  /// of the returned vector is item i's result. Per-item failures (parse
  /// errors, null documents) error only their own slot. When `report` is
  /// non-null it receives this run's statistics. When `cache` binds a
  /// ResultCache, hits skip evaluation and successful answers are
  /// inserted keyed under cache->epoch.
  std::vector<Result<PtqResult>> Run(
      const std::vector<BatchQueryItem>& batch,
      BatchRunReport* report = nullptr,
      const BatchCacheContext* cache = nullptr) const;

  int num_threads() const;

  /// The compiled-query cache this executor evaluates through.
  QueryCompiler* compiler() const { return compiler_.get(); }

 private:
  const PossibleMappingSet* mappings_;
  const BlockTree* tree_;
  BatchExecutorOptions options_;
  std::shared_ptr<QueryCompiler> compiler_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace uxm

#endif  // UXM_EXEC_BATCH_EXECUTOR_H_
