#include "exec/batch_executor.h"

#include <atomic>
#include <exception>
#include <utility>

#include "exec/thread_pool.h"

namespace uxm {

namespace {

/// Per-worker counters. Plan compilation and result caching are shared
/// (the QueryCompiler/ResultCache are internally synchronized); only the
/// tallies stay thread-local so the query hot path takes no extra locks.
struct WorkerScratch {
  int items = 0;
  int compile_hits = 0;
  int result_hits = 0;
  int result_misses = 0;
  int mappings_pruned = 0;
  int aborted = 0;
  int aborted_in_kernel = 0;
};

}  // namespace

/// RAII lease of one pooled arena for one worker slot's claim loop. The
/// arena returns to the pool with its grown capacity intact, so across
/// Runs the fleet of arenas converges on the workload's high-water mark
/// and evaluation scratch stops allocating entirely.
class ScratchLease {
 public:
  explicit ScratchLease(const BatchQueryExecutor* owner)
      : owner_(owner), scratch_(owner->AcquireScratch()) {}
  ~ScratchLease() { owner_->ReleaseScratch(std::move(scratch_)); }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;

  MonotonicScratch* get() const { return scratch_.get(); }

 private:
  const BatchQueryExecutor* owner_;
  std::unique_ptr<MonotonicScratch> scratch_;
};

std::unique_ptr<MonotonicScratch> BatchQueryExecutor::AcquireScratch() const {
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    if (!scratch_pool_.empty()) {
      std::unique_ptr<MonotonicScratch> scratch =
          std::move(scratch_pool_.back());
      scratch_pool_.pop_back();
      return scratch;
    }
  }
  return std::make_unique<MonotonicScratch>();
}

void BatchQueryExecutor::ReleaseScratch(
    std::unique_ptr<MonotonicScratch> scratch) const {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_pool_.push_back(std::move(scratch));
}

BatchQueryExecutor::BatchQueryExecutor(BatchExecutorOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<ThreadPool>(
          options_.num_threads > 0 ? options_.num_threads
                                   : ThreadPool::DefaultThreadCount())) {}

BatchQueryExecutor::~BatchQueryExecutor() = default;

int BatchQueryExecutor::num_threads() const { return pool_->num_threads(); }

std::vector<Result<PtqResult>> BatchQueryExecutor::Run(
    const std::vector<BatchQueryItem>& batch,
    const std::shared_ptr<const PreparedSchemaPair>& default_pair,
    BatchRunReport* report, const BatchCacheContext* cache,
    const BatchRunControl* control) const {
  const size_t n = batch.size();
  std::vector<Result<PtqResult>> results(
      n, Result<PtqResult>(Status::Internal("item not executed")));
  if (report != nullptr) {
    *report = BatchRunReport{};
    report->num_threads = pool_->num_threads();
    report->items_per_thread.assign(
        static_cast<size_t>(pool_->num_threads()), 0);
  }

  ResultCache* result_cache = cache != nullptr ? cache->results : nullptr;
  const uint64_t epoch = cache != nullptr ? cache->epoch : 0;

  // One long-lived claim loop per worker slot (not one task per item):
  // each slot owns its counters for the whole run, and the atomic cursor
  // gives dynamic balancing without any queue contention per item.
  const int slots = pool_->num_threads();
  std::vector<WorkerScratch> scratch(static_cast<size_t>(slots));
  std::atomic<size_t> cursor{0};

  auto run_slot = [&](size_t slot) {
    WorkerScratch& ws = scratch[slot];
    const ScratchLease arena(this);
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const BatchQueryItem& item = batch[i];
      ++ws.items;
      // The whole item is inside the try so any throw — compile, evaluate,
      // even bad_alloc on a result assignment — fails only this slot and
      // never escapes the Result-returning API.
      try {
        const PreparedSchemaPair* pair =
            item.pair != nullptr ? item.pair.get() : default_pair.get();
        if (pair == nullptr) {
          results[i] =
              Status::InvalidArgument("item has no prepared schema pair");
          continue;
        }
        if (item.doc == nullptr) {
          results[i] = Status::InvalidArgument("item has a null document");
          continue;
        }
        DriverRequest request;
        request.pair = pair;
        request.doc = item.doc;
        request.twig = &item.twig;
        request.options = options_.ptq;
        if (item.top_k > 0) request.options.top_k = item.top_k;
        request.use_block_tree = options_.use_block_tree;
        request.scratch = arena.get();
        request.cache = result_cache;
        request.epoch = item.epoch != 0 ? item.epoch : epoch;
        if (control != nullptr) {
          request.upper_bound = item.priority;
          request.cancel_threshold = item.cancel_threshold != nullptr
                                         ? item.cancel_threshold
                                         : control->cancel_threshold;
          request.budget = control->budget;
        }
        DriverCounters counters;
        results[i] = ExecutionDriver::Execute(request, &counters);
        ws.compile_hits += counters.compile_hit ? 1 : 0;
        ws.result_hits += counters.result_hit ? 1 : 0;
        ws.result_misses += counters.result_miss ? 1 : 0;
        ws.mappings_pruned += counters.select.skipped;
        ws.aborted += counters.cancelled ? 1 : 0;
        ws.aborted_in_kernel += counters.cancelled_in_kernel ? 1 : 0;
        if (control != nullptr && control->on_item_done) {
          control->on_item_done(i, results[i]);
        }
      } catch (const std::exception& e) {
        results[i] = Status::Internal(std::string("evaluation threw: ") +
                                      e.what());
      } catch (...) {
        results[i] = Status::Internal("evaluation threw a non-std exception");
      }
    }
  };

  // ParallelFor(slots) runs each slot's claim loop on its own thread
  // (the calling thread doubles as one of them).
  pool_->ParallelFor(static_cast<size_t>(slots), run_slot);

  if (report != nullptr) {
    report->items_per_thread.clear();
    for (const WorkerScratch& ws : scratch) {
      report->items_per_thread.push_back(ws.items);
      report->query_cache_hits += ws.compile_hits;
      report->result_cache_hits += ws.result_hits;
      report->result_cache_misses += ws.result_misses;
      report->mappings_pruned += ws.mappings_pruned;
      report->items_aborted += ws.aborted;
      report->items_aborted_in_kernel += ws.aborted_in_kernel;
    }
    // Sample compiler stats from the default pair, or — for pair-carried
    // runs like corpus fan-outs — from the first item's pair, so corpus
    // batch reports keep their compiler counters.
    const PreparedSchemaPair* report_pair = default_pair.get();
    for (size_t i = 0; report_pair == nullptr && i < n; ++i) {
      report_pair = batch[i].pair.get();
    }
    if (report_pair != nullptr) {
      report->compiler = report_pair->compiler->Stats();
    }
    if (result_cache != nullptr) {
      report->result_cache = result_cache->Stats();
    }
  }
  return results;
}

}  // namespace uxm
