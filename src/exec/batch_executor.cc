#include "exec/batch_executor.h"

#include <atomic>
#include <exception>
#include <unordered_map>
#include <utility>

#include "exec/thread_pool.h"
#include "query/twig_query.h"

namespace uxm {

namespace {

/// Per-worker scratch: parsed queries are cached by text so a batch that
/// repeats the same twig over many documents parses it once per thread,
/// and the evaluator is reused across the worker's items. Nothing in
/// here is shared, so no locks are taken on the query hot path.
struct WorkerScratch {
  std::unordered_map<std::string, Result<TwigQuery>> parsed;
  int items = 0;
  int cache_hits = 0;

  const Result<TwigQuery>& Parse(const std::string& twig) {
    auto it = parsed.find(twig);
    if (it != parsed.end()) {
      ++cache_hits;
      return it->second;
    }
    return parsed.emplace(twig, TwigQuery::Parse(twig)).first->second;
  }
};

}  // namespace

BatchQueryExecutor::BatchQueryExecutor(const PossibleMappingSet* mappings,
                                       const BlockTree* tree,
                                       BatchExecutorOptions options)
    : mappings_(mappings),
      tree_(tree),
      options_(std::move(options)),
      pool_(std::make_unique<ThreadPool>(
          options_.num_threads > 0 ? options_.num_threads
                                   : ThreadPool::DefaultThreadCount())) {}

BatchQueryExecutor::~BatchQueryExecutor() = default;

int BatchQueryExecutor::num_threads() const { return pool_->num_threads(); }

std::vector<Result<PtqResult>> BatchQueryExecutor::Run(
    const std::vector<BatchQueryItem>& batch, BatchRunReport* report) const {
  const size_t n = batch.size();
  std::vector<Result<PtqResult>> results(
      n, Result<PtqResult>(Status::Internal("item not executed")));
  if (report != nullptr) {
    *report = BatchRunReport{};
    report->num_threads = pool_->num_threads();
    report->items_per_thread.assign(
        static_cast<size_t>(pool_->num_threads()), 0);
  }
  if (mappings_ == nullptr) {
    results.assign(n, Result<PtqResult>(
                          Status::InvalidArgument("null mapping set")));
    return results;
  }
  if (options_.use_block_tree && tree_ == nullptr) {
    results.assign(
        n, Result<PtqResult>(Status::InvalidArgument(
               "use_block_tree requires a block tree; pass one or disable")));
    return results;
  }

  // One long-lived claim loop per worker slot (not one task per item):
  // each slot owns its scratch for the whole run, and the atomic cursor
  // gives dynamic balancing without any queue contention per item.
  const int slots = pool_->num_threads();
  std::vector<WorkerScratch> scratch(static_cast<size_t>(slots));
  std::atomic<size_t> cursor{0};

  auto run_slot = [&](size_t slot) {
    WorkerScratch& ws = scratch[slot];
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const BatchQueryItem& item = batch[i];
      ++ws.items;
      // The whole item is inside the try so any throw — parse, evaluate,
      // even bad_alloc on a result assignment — fails only this slot and
      // never escapes the Result-returning API.
      try {
        if (item.doc == nullptr) {
          results[i] = Status::InvalidArgument("item has a null document");
          continue;
        }
        const Result<TwigQuery>& query = ws.Parse(item.twig);
        if (!query.ok()) {
          results[i] = query.status();
          continue;
        }
        PtqOptions opts = options_.ptq;
        if (item.top_k > 0) opts.top_k = item.top_k;
        PtqEvaluator eval(mappings_, item.doc);
        results[i] = options_.use_block_tree
                         ? eval.EvaluateWithBlockTree(*query, *tree_, opts)
                         : eval.EvaluateBasic(*query, opts);
      } catch (const std::exception& e) {
        results[i] = Status::Internal(std::string("evaluation threw: ") +
                                      e.what());
      } catch (...) {
        results[i] = Status::Internal("evaluation threw a non-std exception");
      }
    }
  };

  // ParallelFor(slots) runs each slot's claim loop on its own thread
  // (the calling thread doubles as one of them).
  pool_->ParallelFor(static_cast<size_t>(slots), run_slot);

  if (report != nullptr) {
    report->items_per_thread.clear();
    report->query_cache_hits = 0;
    for (const WorkerScratch& ws : scratch) {
      report->items_per_thread.push_back(ws.items);
      report->query_cache_hits += ws.cache_hits;
    }
  }
  return results;
}

}  // namespace uxm
