#include "exec/batch_executor.h"

#include <atomic>
#include <exception>
#include <utility>

#include "cache/cached_eval.h"
#include "exec/thread_pool.h"

namespace uxm {

namespace {

/// Per-worker counters. Compilation and result caching are shared (the
/// QueryCompiler/ResultCache are internally synchronized); only the tallies
/// stay thread-local so the query hot path takes no extra locks.
struct WorkerScratch {
  int items = 0;
  int compile_hits = 0;
  int result_hits = 0;
  int result_misses = 0;
};

}  // namespace

BatchQueryExecutor::BatchQueryExecutor(const PossibleMappingSet* mappings,
                                       const BlockTree* tree,
                                       BatchExecutorOptions options)
    : mappings_(mappings),
      tree_(tree),
      options_(std::move(options)),
      compiler_(options_.compiler != nullptr
                    ? options_.compiler
                    : std::make_shared<QueryCompiler>(
                          mappings, options_.ptq.max_embeddings)),
      pool_(std::make_unique<ThreadPool>(
          options_.num_threads > 0 ? options_.num_threads
                                   : ThreadPool::DefaultThreadCount())) {}

BatchQueryExecutor::~BatchQueryExecutor() = default;

int BatchQueryExecutor::num_threads() const { return pool_->num_threads(); }

std::vector<Result<PtqResult>> BatchQueryExecutor::Run(
    const std::vector<BatchQueryItem>& batch, BatchRunReport* report,
    const BatchCacheContext* cache) const {
  const size_t n = batch.size();
  std::vector<Result<PtqResult>> results(
      n, Result<PtqResult>(Status::Internal("item not executed")));
  if (report != nullptr) {
    *report = BatchRunReport{};
    report->num_threads = pool_->num_threads();
    report->items_per_thread.assign(
        static_cast<size_t>(pool_->num_threads()), 0);
  }
  if (mappings_ == nullptr) {
    results.assign(n, Result<PtqResult>(
                          Status::InvalidArgument("null mapping set")));
    return results;
  }
  if (options_.use_block_tree && tree_ == nullptr) {
    results.assign(
        n, Result<PtqResult>(Status::InvalidArgument(
               "use_block_tree requires a block tree; pass one or disable")));
    return results;
  }

  ResultCache* result_cache = cache != nullptr ? cache->results : nullptr;
  const uint64_t epoch = cache != nullptr ? cache->epoch : 0;

  // One long-lived claim loop per worker slot (not one task per item):
  // each slot owns its counters for the whole run, and the atomic cursor
  // gives dynamic balancing without any queue contention per item.
  const int slots = pool_->num_threads();
  std::vector<WorkerScratch> scratch(static_cast<size_t>(slots));
  std::atomic<size_t> cursor{0};

  auto run_slot = [&](size_t slot) {
    WorkerScratch& ws = scratch[slot];
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const BatchQueryItem& item = batch[i];
      ++ws.items;
      // The whole item is inside the try so any throw — compile, evaluate,
      // even bad_alloc on a result assignment — fails only this slot and
      // never escapes the Result-returning API.
      try {
        if (item.doc == nullptr) {
          results[i] = Status::InvalidArgument("item has a null document");
          continue;
        }
        PtqOptions opts = options_.ptq;
        if (item.top_k > 0) opts.top_k = item.top_k;
        CachedEvalCounters counters;
        results[i] = EvaluateThroughCaches(
            *mappings_, options_.use_block_tree ? tree_ : nullptr, *item.doc,
            *compiler_, result_cache, item.epoch != 0 ? item.epoch : epoch,
            item.twig, opts, &counters);
        ws.compile_hits += counters.compile_hit ? 1 : 0;
        ws.result_hits += counters.result_hit ? 1 : 0;
        ws.result_misses += counters.result_miss ? 1 : 0;
      } catch (const std::exception& e) {
        results[i] = Status::Internal(std::string("evaluation threw: ") +
                                      e.what());
      } catch (...) {
        results[i] = Status::Internal("evaluation threw a non-std exception");
      }
    }
  };

  // ParallelFor(slots) runs each slot's claim loop on its own thread
  // (the calling thread doubles as one of them).
  pool_->ParallelFor(static_cast<size_t>(slots), run_slot);

  if (report != nullptr) {
    report->items_per_thread.clear();
    for (const WorkerScratch& ws : scratch) {
      report->items_per_thread.push_back(ws.items);
      report->query_cache_hits += ws.compile_hits;
      report->result_cache_hits += ws.result_hits;
      report->result_cache_misses += ws.result_misses;
    }
    report->compiler = compiler_->Stats();
    if (result_cache != nullptr) {
      report->result_cache = result_cache->Stats();
    }
  }
  return results;
}

}  // namespace uxm
