// A fixed-size thread pool with a single shared FIFO queue. Deliberately
// minimal: no work stealing, no priorities, no dynamic sizing — the batch
// executor layered on top (exec/batch_executor.h) does its own dynamic
// load balancing with an atomic cursor, so the pool only needs to run
// opaque tasks and shut down cleanly.
//
// Exception safety: tasks are wrapped in std::packaged_task, so an
// exception escaping a task is captured into the returned future and
// rethrown at future.get(); worker threads never die from a throwing
// task. ParallelFor rethrows the first captured exception in the calling
// thread after every worker has finished.
#ifndef UXM_EXEC_THREAD_POOL_H_
#define UXM_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace uxm {

/// \brief Fixed-size FIFO thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins all workers (equivalent to Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. If `fn` throws,
  /// the exception is delivered through the future. Returns an invalid
  /// (default-constructed) future if the pool is already shut down.
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> Submit(F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return std::future<R>();
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(0) .. fn(n-1) across the pool's workers with dynamic
  /// (atomic-cursor) scheduling and blocks until every index has run.
  /// The first exception thrown by any fn(i) is rethrown here after all
  /// workers finish; remaining indices may be skipped once an exception
  /// is observed.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Stops accepting work, runs every already-queued task, joins all
  /// workers. Idempotent; safe to call concurrently with Submit.
  void Shutdown();

  /// The pool's configured width. Stable for the pool's lifetime (it is
  /// not zeroed by Shutdown), so it is safe to read concurrently.
  int num_threads() const { return num_threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  int num_threads_ = 0;
  std::vector<std::thread> workers_;
};

/// \brief A handful of dedicated threads joined on scope exit.
///
/// For short-lived coordinator/driver threads that themselves DISPATCH
/// into a ThreadPool and block on the result — the sharded corpus
/// coordinator's per-shard schedulers (shard/sharded_corpus_executor.h)
/// are the motivating case. Such drivers must NOT run as pool tasks: a
/// driver occupying a pool worker while its nested ParallelFor waits for
/// slot tasks queued behind OTHER blocked drivers is a deadlock cycle.
/// Dedicated threads keep the pool's workers free for actual work, and
/// join-on-destruction keeps an exception on the spawning path from
/// leaking a running thread.
class ScopedThreads {
 public:
  ScopedThreads() = default;
  ~ScopedThreads() { JoinAll(); }

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

  /// Spawns a thread running `fn`. The callable must not throw — there
  /// is no future to carry the exception; marshal failures through
  /// captured state instead.
  template <typename F>
  void Spawn(F&& fn) {
    threads_.emplace_back(std::forward<F>(fn));
  }

  /// Joins every spawned thread. Idempotent.
  void JoinAll() {
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace uxm

#endif  // UXM_EXEC_THREAD_POOL_H_
