#include "exec/thread_pool.h"

#include <atomic>
#include <exception>

namespace uxm {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  num_threads_ = num_threads;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the caller's future
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The calling thread participates too, so ParallelFor makes progress
  // even when every pool worker is busy with other work.
  std::vector<std::future<void>> futures;
  const size_t helpers = static_cast<size_t>(num_threads());
  futures.reserve(helpers);
  for (size_t t = 0; t < helpers; ++t) {
    auto f = Submit(worker);
    if (f.valid()) futures.push_back(std::move(f));
  }
  worker();
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::Shutdown() {
  // Claim the worker handles under the lock so concurrent Shutdown calls
  // are safe: only the caller that swaps them out joins; everyone else
  // sees an empty vector and returns.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

int ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace uxm
