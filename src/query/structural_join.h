// Stack-based binary structural join (Al-Khalifa et al., ICDE 2002,
// Stack-Tree-Desc): joins a sorted list of potential ancestors with a
// sorted list of potential descendants in one pass. Used by the query
// decomposition step of Algorithm 4 (stack_join, line 16).
#ifndef UXM_QUERY_STRUCTURAL_JOIN_H_
#define UXM_QUERY_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "xml/document.h"

namespace uxm {

/// \brief One (ancestor, descendant) output pair of a structural join.
struct JoinPair {
  int32_t ancestor_index = 0;    ///< Index into the ancestor input list.
  int32_t descendant_index = 0;  ///< Index into the descendant input list.
};

/// Joins `ancestors` x `descendants` under the ancestor-descendant (or,
/// with `parent_child`, the parent-child) relationship.
///
/// Inputs are doc node ids sorted by document order (region start); both
/// may contain duplicates. Output pairs are produced in descendant-major
/// document order. Runs in O(|A| + |D| + |out|).
std::vector<JoinPair> StackJoin(const Document& doc,
                                const std::vector<DocNodeId>& ancestors,
                                const std::vector<DocNodeId>& descendants,
                                bool parent_child);

}  // namespace uxm

#endif  // UXM_QUERY_STRUCTURAL_JOIN_H_
