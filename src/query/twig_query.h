// Twig query model and parser (§IV-A). A twig pattern is a tree of labeled
// nodes; each non-root node hangs off its parent by a '/' (parent-child)
// or '//' (ancestor-descendant) edge, and a node may carry an equality
// predicate on its text value.
//
// Accepted syntax (the queries of Table III):
//   Order/DeliverTo/Address[./City][./Country]/Street
//   //IP//ICN
//   Order/POLine[./LineNo][.//UP]/Quantity
//   Order[./Buyer/Contact]/POLine[.//BPID="X42"]/Quantity
//
// '[...]' opens a branch relative to the current node; './' means child,
// './/' (or bare '//') means descendant. The step after the closing
// bracket continues the spine below the same node.
#ifndef UXM_QUERY_TWIG_QUERY_H_
#define UXM_QUERY_TWIG_QUERY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace uxm {

/// Edge axis between a twig node and its parent.
enum class Axis {
  kChild,       ///< '/'
  kDescendant,  ///< '//'
};

/// \brief One node of a twig pattern.
struct TwigNode {
  std::string label;
  Axis axis = Axis::kChild;  ///< Edge from parent (root: see absolute_root).
  std::optional<std::string> value_eq;  ///< [.../X="v"] predicate.
  int parent = -1;
  std::vector<int> children;
};

/// \brief A parsed twig pattern. Node 0 is the root; nodes are stored in
/// pre-order, so any subtree is a contiguous id range.
class TwigQuery {
 public:
  /// Parses the textual form. Fails with ParseError on bad syntax.
  static Result<TwigQuery> Parse(std::string_view text);

  int size() const { return static_cast<int>(nodes_.size()); }
  const TwigNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }
  const std::vector<TwigNode>& nodes() const { return nodes_; }

  /// True if the query began with a label (e.g. "Order/...") — the root
  /// must then match the document/schema root. False for "//IP//ICN".
  bool absolute_root() const { return absolute_root_; }

  /// The query's output (distinguished) node: the last step of the main
  /// spine, whose bindings form the query answer (XPath result-node
  /// semantics; the intro example's "Cathy"/"Bob"/"Alice" are the values
  /// of this node).
  int output_node() const { return output_node_; }
  void set_output_node(int v) { output_node_ = v; }

  /// Number of edges |E| (= size() - 1).
  int EdgeCount() const { return size() - 1; }

  /// Node ids of the subtree rooted at `i`, pre-order (contiguous).
  std::vector<int> SubtreeNodes(int i) const;

  /// Serializes back to query syntax (canonical form).
  std::string ToString() const;

  // Construction API (used by the parser and by split_query).
  int AddNode(TwigNode node);
  void set_absolute_root(bool v) { absolute_root_ = v; }
  /// Attaches a [.="v"]-style equality predicate to node `i`.
  void SetValuePredicate(int i, std::string value) {
    nodes_[static_cast<size_t>(i)].value_eq = std::move(value);
  }

 private:
  std::vector<TwigNode> nodes_;
  bool absolute_root_ = false;
  int output_node_ = 0;
};

}  // namespace uxm

#endif  // UXM_QUERY_TWIG_QUERY_H_
