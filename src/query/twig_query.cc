#include "query/twig_query.h"

#include <cctype>

namespace uxm {

namespace {

/// Recursive-descent parser for the twig syntax.
class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  Status Run(TwigQuery* q) {
    // Root axis.
    bool absolute = true;
    if (Lookahead("//")) {
      absolute = false;
      Advance(2);
    } else if (Lookahead("/")) {
      Advance(1);
    }
    q->set_absolute_root(absolute);
    UXM_ASSIGN_OR_RETURN(
        int last, ParseSpine(q, /*parent=*/-1,
                             absolute ? Axis::kChild : Axis::kDescendant));
    q->set_output_node(last);
    if (!AtEnd()) return Error("trailing characters");
    if (q->size() == 0) return Error("empty query");
    return Status::OK();
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  void Advance(size_t n) { pos_ += n; }
  bool Lookahead(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("twig query at offset " + std::to_string(pos_) +
                              ": " + msg);
  }

  static bool IsLabelChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':';
  }

  Result<std::string> ParseLabel() {
    const size_t begin = pos_;
    while (!AtEnd() && IsLabelChar(Peek())) Advance(1);
    if (pos_ == begin) return Error("expected element label");
    return std::string(in_.substr(begin, pos_ - begin));
  }

  /// Parses: step (predicates)* (axis step (predicates)*)* — a downward
  /// chain hanging under `parent` with first edge `first_axis`. Returns
  /// the id of the last spine node.
  Result<int> ParseSpine(TwigQuery* q, int parent, Axis first_axis) {
    Axis axis = first_axis;
    int cur = parent;
    for (;;) {
      UXM_ASSIGN_OR_RETURN(std::string label, ParseLabel());
      TwigNode node;
      node.label = std::move(label);
      node.axis = axis;
      node.parent = cur;
      cur = q->AddNode(std::move(node));
      // Predicates (may nest: Order[./DeliverTo[.//EMail]//Street]).
      while (!AtEnd() && Peek() == '[') {
        Advance(1);
        UXM_RETURN_NOT_OK(ParsePredicate(q, cur));
        if (AtEnd() || Peek() != ']') return Error("expected ']'");
        Advance(1);
      }
      // Optional trailing equality on the step itself (//ICN="Bob").
      if (!AtEnd() && Peek() == '=') {
        Advance(1);
        UXM_ASSIGN_OR_RETURN(std::string value, ParseQuotedValue());
        q->SetValuePredicate(cur, value);
      }
      // Continue the spine?
      if (Lookahead("//")) {
        axis = Axis::kDescendant;
        Advance(2);
      } else if (Lookahead("/")) {
        axis = Axis::kChild;
        Advance(1);
      } else {
        return cur;
      }
    }
  }

  /// Parses the inside of '[...]': a relative twig branch (with nested
  /// predicates allowed), optionally ending in ="value".
  Status ParsePredicate(TwigQuery* q, int owner) {
    Axis axis = Axis::kChild;
    if (Lookahead(".//")) {
      axis = Axis::kDescendant;
      Advance(3);
    } else if (Lookahead("./")) {
      Advance(2);
    } else if (Lookahead("//")) {
      axis = Axis::kDescendant;
      Advance(2);
    } else if (Lookahead("/")) {
      Advance(1);
    } else if (Lookahead(".")) {
      return Error("bare '.' predicate not supported");
    }
    UXM_ASSIGN_OR_RETURN(int last, ParseSpine(q, owner, axis));
    (void)last;  // trailing ="v" is consumed by ParseSpine itself
    return Status::OK();
  }

  Result<std::string> ParseQuotedValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted value after '='");
    }
    const char quote = Peek();
    Advance(1);
    const size_t begin = pos_;
    while (!AtEnd() && Peek() != quote) Advance(1);
    if (AtEnd()) return Error("unterminated value string");
    std::string value(in_.substr(begin, pos_ - begin));
    Advance(1);
    return value;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace

Result<TwigQuery> TwigQuery::Parse(std::string_view text) {
  TwigQuery q;
  Parser parser(text);
  UXM_RETURN_NOT_OK(parser.Run(&q));
  return q;
}

int TwigQuery::AddNode(TwigNode node) {
  const int id = static_cast<int>(nodes_.size());
  if (node.parent >= 0) {
    nodes_[static_cast<size_t>(node.parent)].children.push_back(id);
  }
  nodes_.push_back(std::move(node));
  return id;
}

std::vector<int> TwigQuery::SubtreeNodes(int i) const {
  // Pre-order storage makes subtrees contiguous... except predicates may
  // interleave spine continuation after branch nodes, so walk explicitly.
  std::vector<int> out;
  std::vector<int> stack{i};
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& ch = nodes_[static_cast<size_t>(cur)].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

namespace {

/// Renders the subtree at `id`. `on_output_path[n]` marks the chain from
/// the root to the output node: along it the last child continues the
/// main spine, and the spine must STOP at the output node itself — its
/// children all render as bracket predicates, because "A[./B]" and "A/B"
/// build the same tree but answer with different nodes (reparsing the
/// latter would silently move the output node to B). Off the output path
/// the spine/predicate split carries no meaning, and the last child
/// renders as a spine step for compactness.
void RenderNode(const TwigQuery& q, int id,
                const std::vector<char>& on_output_path, std::string* out) {
  const TwigNode& n = q.node(id);
  *out += n.label;
  const auto& ch = n.children;
  const bool continue_spine =
      !ch.empty() &&
      (!on_output_path[static_cast<size_t>(id)] ||
       (id != q.output_node() &&
        on_output_path[static_cast<size_t>(ch.back())]));
  // The grammar puts a node's '="v"' after its bracket predicates and
  // before the spine continuation, so render in exactly that order (a
  // value predicate on an inner node used to be silently dropped here).
  const size_t num_preds = continue_spine ? ch.size() - 1 : ch.size();
  for (size_t i = 0; i < num_preds; ++i) {
    const TwigNode& c = q.node(ch[i]);
    *out += "[.";
    *out += (c.axis == Axis::kDescendant) ? "//" : "/";
    RenderNode(q, ch[i], on_output_path, out);
    *out += ']';
  }
  if (n.value_eq.has_value()) {
    // The grammar has no escapes; fall back to single quotes when the
    // value itself contains a double quote.
    const char quote = n.value_eq->find('"') == std::string::npos ? '"' : '\'';
    *out += '=';
    *out += quote;
    *out += *n.value_eq;
    *out += quote;
  }
  if (continue_spine) {
    const int last = ch.back();
    const TwigNode& c = q.node(last);
    *out += (c.axis == Axis::kDescendant) ? "//" : "/";
    RenderNode(q, last, on_output_path, out);
  }
}

}  // namespace

std::string TwigQuery::ToString() const {
  if (nodes_.empty()) return "";
  std::vector<char> on_output_path(nodes_.size(), 0);
  for (int n = output_node_; n >= 0;
       n = nodes_[static_cast<size_t>(n)].parent) {
    on_output_path[static_cast<size_t>(n)] = 1;
  }
  std::string out;
  if (!absolute_root_) out += "//";
  RenderNode(*this, 0, on_output_path, &out);
  return out;
}

}  // namespace uxm
