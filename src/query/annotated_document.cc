#include "query/annotated_document.h"

#include <algorithm>

namespace uxm {

Result<AnnotatedDocument> AnnotatedDocument::Bind(const Document* doc,
                                                  const Schema* schema) {
  if (doc == nullptr || schema == nullptr) {
    return Status::InvalidArgument("doc and schema must be non-null");
  }
  if (doc->empty() || schema->empty()) {
    return Status::InvalidArgument("doc and schema must be non-empty");
  }
  if (doc->label(doc->root()) != schema->name(schema->root())) {
    return Status::InvalidArgument(
        "document root <" + doc->label(doc->root()) +
        "> does not match schema root <" + schema->name(schema->root()) + ">");
  }
  AnnotatedDocument ad;
  ad.doc_ = doc;
  ad.schema_ = schema;
  ad.node_element_.assign(static_cast<size_t>(doc->size()),
                          kInvalidSchemaNode);
  ad.instances_.resize(static_cast<size_t>(schema->size()));

  ad.node_element_[0] = schema->root();
  // Document ids are in pre-order, so parents are annotated before
  // children; one linear pass suffices.
  for (DocNodeId n = 1; n < doc->size(); ++n) {
    const DocNodeId parent = doc->node(n).parent;
    const SchemaNodeId pe = ad.node_element_[static_cast<size_t>(parent)];
    if (pe == kInvalidSchemaNode) continue;
    for (SchemaNodeId c : schema->node(pe).children) {
      if (schema->name(c) == doc->label(n)) {
        ad.node_element_[static_cast<size_t>(n)] = c;
        break;
      }
    }
  }
  for (DocNodeId n = 0; n < doc->size(); ++n) {
    const SchemaNodeId e = ad.node_element_[static_cast<size_t>(n)];
    if (e != kInvalidSchemaNode) {
      ad.instances_[static_cast<size_t>(e)].push_back(n);
    }
  }
  // Instance lists are promised sorted by document order (region start);
  // node ids follow creation order, which need not agree.
  for (auto& list : ad.instances_) {
    std::sort(list.begin(), list.end(), [&](DocNodeId a, DocNodeId b) {
      return doc->node(a).start < doc->node(b).start;
    });
  }
  return ad;
}

Result<AnnotatedDocument> AnnotatedDocument::FromParts(
    const Document* doc, const Schema* schema,
    std::vector<SchemaNodeId> node_element) {
  if (doc == nullptr || schema == nullptr) {
    return Status::InvalidArgument("doc and schema must be non-null");
  }
  if (node_element.size() != static_cast<size_t>(doc->size())) {
    return Status::InvalidArgument(
        "node_element has " + std::to_string(node_element.size()) +
        " entries for a document of " + std::to_string(doc->size()) +
        " nodes");
  }
  for (SchemaNodeId e : node_element) {
    if (e != kInvalidSchemaNode && (e < 0 || e >= schema->size())) {
      return Status::InvalidArgument("node_element references element " +
                                     std::to_string(e) +
                                     " outside the schema");
    }
  }
  AnnotatedDocument ad;
  ad.doc_ = doc;
  ad.schema_ = schema;
  ad.node_element_ = std::move(node_element);
  ad.instances_.resize(static_cast<size_t>(schema->size()));
  for (DocNodeId n = 0; n < doc->size(); ++n) {
    const SchemaNodeId e = ad.node_element_[static_cast<size_t>(n)];
    if (e != kInvalidSchemaNode) {
      ad.instances_[static_cast<size_t>(e)].push_back(n);
    }
  }
  for (auto& list : ad.instances_) {
    std::sort(list.begin(), list.end(), [&](DocNodeId a, DocNodeId b) {
      return doc->node(a).start < doc->node(b).start;
    });
  }
  return ad;
}

int AnnotatedDocument::UnboundCount() const {
  int n = 0;
  for (SchemaNodeId e : node_element_) {
    if (e == kInvalidSchemaNode) ++n;
  }
  return n;
}

}  // namespace uxm
