#include "query/structural_join.h"

namespace uxm {

std::vector<JoinPair> StackJoin(const Document& doc,
                                const std::vector<DocNodeId>& ancestors,
                                const std::vector<DocNodeId>& descendants,
                                bool parent_child) {
  std::vector<JoinPair> out;
  // Stack of ancestor-list indices whose regions nest (classic
  // Stack-Tree-Desc). Invariant: regions of stacked nodes are nested,
  // innermost on top.
  std::vector<int32_t> stack;
  size_t a = 0;
  size_t d = 0;
  while (d < descendants.size()) {
    const DocNode& dn = doc.node(descendants[d]);
    // Push all ancestors that start before this descendant.
    while (a < ancestors.size() &&
           doc.node(ancestors[a]).start < dn.start) {
      // Pop ancestors that ended before this one starts.
      while (!stack.empty() &&
             doc.node(ancestors[static_cast<size_t>(stack.back())]).end <
                 doc.node(ancestors[a]).start) {
        stack.pop_back();
      }
      stack.push_back(static_cast<int32_t>(a));
      ++a;
    }
    // Pop stack entries that ended before the descendant starts.
    while (!stack.empty() &&
           doc.node(ancestors[static_cast<size_t>(stack.back())]).end <
               dn.start) {
      stack.pop_back();
    }
    // Every remaining stacked ancestor contains dn.
    for (int32_t idx : stack) {
      const DocNodeId anc = ancestors[static_cast<size_t>(idx)];
      if (anc == descendants[d]) continue;  // self is not an ancestor
      if (parent_child && dn.parent != anc) continue;
      out.push_back(JoinPair{idx, static_cast<int32_t>(d)});
    }
    ++d;
  }
  return out;
}

}  // namespace uxm
