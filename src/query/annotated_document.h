// A Document bound to the source schema it conforms to: every document
// node is resolved to the schema element it instantiates, and per-element
// instance lists (sorted in document order) support O(1) candidate lookup
// during query rewriting. This is the "dS conforms to S" assumption of
// §IV made operational.
#ifndef UXM_QUERY_ANNOTATED_DOCUMENT_H_
#define UXM_QUERY_ANNOTATED_DOCUMENT_H_

#include <vector>

#include "common/status.h"
#include "xml/document.h"
#include "xml/schema.h"

namespace uxm {

/// \brief Document + schema binding.
class AnnotatedDocument {
 public:
  /// Binds `doc` to `schema`. Nodes that do not fit the schema (label not
  /// declared under the parent's element) are left unbound; they can never
  /// answer a schema-level query. Fails if the root label does not match
  /// the schema root. Both referents must outlive the annotation.
  static Result<AnnotatedDocument> Bind(const Document* doc,
                                        const Schema* schema);

  /// Reassembles an annotation from a stored per-node element table (the
  /// snapshot loader). `node_element` must have one entry per document
  /// node, each kInvalidSchemaNode or a valid element of `schema`; the
  /// instance lists are rebuilt exactly as Bind builds them, so a loaded
  /// annotation is indistinguishable from a fresh one.
  static Result<AnnotatedDocument> FromParts(
      const Document* doc, const Schema* schema,
      std::vector<SchemaNodeId> node_element);

  const Document& doc() const { return *doc_; }
  const Schema& schema() const { return *schema_; }

  /// Schema element instantiated by a document node (kInvalidSchemaNode if
  /// unbound).
  SchemaNodeId ElementOf(DocNodeId n) const {
    return node_element_[static_cast<size_t>(n)];
  }

  /// Document nodes instantiating schema element `e`, sorted by document
  /// order (i.e. by region start).
  const std::vector<DocNodeId>& InstancesOf(SchemaNodeId e) const {
    return instances_[static_cast<size_t>(e)];
  }

  /// Number of document nodes left unbound (diagnostics).
  int UnboundCount() const;

 private:
  const Document* doc_ = nullptr;
  const Schema* schema_ = nullptr;
  std::vector<SchemaNodeId> node_element_;       // per doc node
  std::vector<std::vector<DocNodeId>> instances_;  // per schema element
};

}  // namespace uxm

#endif  // UXM_QUERY_ANNOTATED_DOCUMENT_H_
