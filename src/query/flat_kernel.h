// Flat-array PTQ evaluation kernel (ROADMAP item 3).
//
// Drop-in replacements for PtqEvaluator::EvaluateTreePrepared /
// EvaluateBasicPrepared that run entirely over the FlatPairIndex
// (blocktree/flat_block_tree.h) with every intermediate — candidate
// lists, satisfaction sets, per-mapping projected results, output
// accumulators — carved out of a caller-supplied MonotonicScratch. The
// only heap traffic per call is the returned PtqResult; once the arena
// has grown to the workload's high-water mark, the steady-state inner
// loop performs zero allocations.
//
// This is THE evaluation kernel: the execution driver and PtqEvaluator
// both run through it (the legacy pointer kernel it replaced was
// differential-tested bit-identical before deletion).
//
// Arena lifetime: the caller Resets the arena before each evaluation
// (plan/driver.cc does); everything allocated during the call dies at
// the next Reset. Arenas are single-threaded — BatchQueryExecutor leases
// one per worker slot, and ThreadLocalScratch() serves direct Query
// traffic.
#ifndef UXM_QUERY_FLAT_KERNEL_H_
#define UXM_QUERY_FLAT_KERNEL_H_

#include <atomic>
#include <chrono>
#include <vector>

#include "blocktree/flat_block_tree.h"
#include "common/arena.h"
#include "common/status.h"
#include "query/annotated_document.h"
#include "query/ptq.h"

namespace uxm {

/// The per-thread fallback arena used when a caller has no leased one
/// (direct Query / QueryTopK / QueryBasic traffic). Never shared across
/// threads; reset by the driver at the start of each evaluation.
MonotonicScratch* ThreadLocalScratch();

/// \brief In-kernel cancellation hook for bound-driven corpus runs.
///
/// The kernel periodically (every few dozen inner-loop steps, to keep the
/// hot path branch-cheap) performs a relaxed load of `*threshold` and
/// abandons the evaluation with Status::Cancelled the moment the loaded
/// value exceeds `cancel_above` — the caller's answer upper bound plus
/// kAnswerBoundSlack, precomputed so the kernel compares two doubles and
/// nothing else. Cancellation is a pure early-out: no partially-built
/// answer escapes (the result is discarded with the arena), so it cannot
/// perturb exactness — the scheduler only cancels items it has already
/// proven unable to affect the top-k. Null `threshold` (or a null
/// context) disables the threshold checks.
///
/// Budgeted corpus runs (corpus/run_budget.h) additionally set `expired`
/// — the run's sticky expiry flag — and `deadline`. The same poll sites
/// then also abandon the evaluation once the flag is set, and the kernel
/// reads the clock itself against `deadline` so even a single stuck
/// evaluation expires the whole run (publishing the flag for everyone
/// else) within one poll interval instead of at the next wave boundary.
/// Unlike a threshold cancel, a budget cancel is NOT exactness-preserving:
/// the scheduler charges the item's bound to the twig's certified
/// residual (see CorpusQueryResult::max_residual_bound).
struct KernelCancelContext {
  const std::atomic<double>* threshold = nullptr;
  double cancel_above = 0.0;
  std::atomic<bool>* expired = nullptr;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Algorithm 3 (query_basic) over the flat index: rewrite + match
/// independently per (mapping, embedding), answers unioned per mapping.
Result<PtqResult> EvaluateBasicFlat(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    const std::vector<MappingId>& relevant, bool truncated,
    const FlatPairIndex& index, const AnnotatedDocument& doc,
    const PtqOptions& options, MonotonicScratch* arena,
    const KernelCancelContext* cancel = nullptr);

/// Algorithm 4 (twig_query_tree) over the flat index, with the c-block
/// fast path resolved through the precomputed self_anchored[] column
/// instead of the string-keyed hash table, and block results replicated
/// to the block's mappings as arena spans.
Result<PtqResult> EvaluateTreeFlat(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    const std::vector<MappingId>& relevant, bool truncated,
    const FlatPairIndex& index, const AnnotatedDocument& doc,
    const PtqOptions& options, MonotonicScratch* arena,
    const KernelCancelContext* cancel = nullptr);

}  // namespace uxm

#endif  // UXM_QUERY_FLAT_KERNEL_H_
