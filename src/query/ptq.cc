#include "query/ptq.h"

#include <algorithm>

#include "blocktree/flat_block_tree.h"
#include "common/logging.h"
#include "query/flat_kernel.h"

namespace uxm {

std::vector<MappingAnswer> PtqResult::CollapseByMatches() const {
  std::vector<MappingAnswer> collapsed;
  for (const MappingAnswer& a : answers) {
    bool merged = false;
    for (MappingAnswer& c : collapsed) {
      if (c.matches == a.matches) {
        c.probability += a.probability;
        merged = true;
        break;
      }
    }
    if (!merged) {
      collapsed.push_back(a);
    }
  }
  std::sort(collapsed.begin(), collapsed.end(),
            [](const MappingAnswer& x, const MappingAnswer& y) {
              return x.probability > y.probability;
            });
  return collapsed;
}

double PtqResult::NonEmptyMass() const {
  double mass = 0.0;
  for (const MappingAnswer& a : answers) {
    if (!a.matches.empty()) mass += a.probability;
  }
  return mass;
}

std::vector<std::vector<SchemaNodeId>> EmbedQueryInSchema(
    const TwigQuery& query, const Schema& schema, size_t max_embeddings,
    bool* truncated) {
  // Enumerate one embedding beyond the cap when the caller wants to know
  // whether the cap actually bit; the extra is dropped before returning.
  const size_t limit = (truncated != nullptr && max_embeddings > 0)
                           ? max_embeddings + 1
                           : max_embeddings;
  if (truncated != nullptr) *truncated = false;
  std::vector<std::vector<SchemaNodeId>> out;
  if (query.size() == 0) return out;

  // Root candidates.
  std::vector<SchemaNodeId> root_cands;
  if (query.absolute_root()) {
    if (schema.name(schema.root()) == query.node(0).label) {
      root_cands.push_back(schema.root());
    }
  } else {
    root_cands = schema.FindByName(query.node(0).label);
  }

  std::vector<SchemaNodeId> embedding(static_cast<size_t>(query.size()),
                                      kInvalidSchemaNode);
  const std::vector<int> pre = query.SubtreeNodes(0);

  auto candidates_for = [&](int qi) -> std::vector<SchemaNodeId> {
    const TwigNode& qn = query.node(qi);
    if (qi == 0) return root_cands;
    const SchemaNodeId pe = embedding[static_cast<size_t>(qn.parent)];
    std::vector<SchemaNodeId> cands;
    if (qn.axis == Axis::kChild) {
      for (SchemaNodeId c : schema.node(pe).children) {
        if (schema.name(c) == qn.label) cands.push_back(c);
      }
    } else {
      for (SchemaNodeId c : schema.FindByName(qn.label)) {
        if (c != pe && schema.IsAncestorOrSelf(pe, c)) cands.push_back(c);
      }
    }
    return cands;
  };

  struct Frame {
    std::vector<SchemaNodeId> cands;
    size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({candidates_for(pre[0]), 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    const size_t depth = stack.size() - 1;
    const int qi = pre[depth];
    if (f.next >= f.cands.size()) {
      embedding[static_cast<size_t>(qi)] = kInvalidSchemaNode;
      stack.pop_back();
      continue;
    }
    embedding[static_cast<size_t>(qi)] = f.cands[f.next++];
    if (depth + 1 == pre.size()) {
      out.push_back(embedding);
      if (limit > 0 && out.size() >= limit) break;
      continue;
    }
    stack.push_back({candidates_for(pre[depth + 1]), 0});
  }
  if (truncated != nullptr && max_embeddings > 0 &&
      out.size() > max_embeddings) {
    *truncated = true;
    out.resize(max_embeddings);
    // Once per distinct twig, not once per evaluation: a capped twig
    // repeated across a large batch must not flood stderr. (Callers also
    // see PtqResult::truncated_embeddings per answer.)
    if (LogFirstSighting("truncated_embeddings:" + query.ToString())) {
      UXM_LOG(Warning) << "query '" << query.ToString()
                       << "' embeddings truncated at " << max_embeddings
                       << "; its answers may be incomplete";
    }
  }
  return out;
}

bool IsMappingRelevant(
    const PossibleMapping& m,
    const std::vector<std::vector<SchemaNodeId>>& embeddings) {
  for (const auto& emb : embeddings) {
    bool all = true;
    for (SchemaNodeId t : emb) {
      if (t != kInvalidSchemaNode && m.SourceFor(t) == kInvalidSchemaNode) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

void SortByProbabilityDescending(const PossibleMappingSet& mappings,
                                 std::vector<MappingId>* ids) {
  std::stable_sort(ids->begin(), ids->end(),
                   [&](MappingId a, MappingId b) {
                     return mappings.mapping(a).probability >
                            mappings.mapping(b).probability;
                   });
}

std::vector<MappingId> FilterRelevantMappings(
    const PossibleMappingSet& mappings,
    const std::vector<std::vector<SchemaNodeId>>& embeddings, int top_k) {
  std::vector<MappingId> relevant;
  for (MappingId mid = 0; mid < mappings.size(); ++mid) {
    if (IsMappingRelevant(mappings.mapping(mid), embeddings)) {
      relevant.push_back(mid);
    }
  }
  if (top_k > 0) {
    // §IV-C: keep only the k most probable relevant mappings.
    SortByProbabilityDescending(mappings, &relevant);
    if (static_cast<int>(relevant.size()) > top_k) {
      relevant.resize(static_cast<size_t>(top_k));
    }
    std::sort(relevant.begin(), relevant.end());
  }
  return relevant;
}

std::vector<MappingId> PtqEvaluator::FilterMappings(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    int top_k) const {
  (void)query;
  return FilterRelevantMappings(*mappings_, embeddings, top_k);
}

std::shared_ptr<const FlatPairIndex> PtqEvaluator::FlatIndexFor(
    const BlockTree* tree) const {
  std::lock_guard<std::mutex> lock(flat_mu_);
  for (const auto& [key, index] : flat_cache_) {
    if (key == tree) return index;
  }
  auto index = std::make_shared<const FlatPairIndex>(
      BuildFlatPairIndex(*mappings_, tree));
  flat_cache_.emplace_back(tree, index);
  return index;
}

Result<PtqResult> PtqEvaluator::EvaluateBasic(const TwigQuery& query,
                                              const PtqOptions& options) const {
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  bool truncated = false;
  const auto embeddings = EmbedQueryInSchema(
      query, mappings_->target(), options.max_embeddings, &truncated);
  const std::vector<MappingId> relevant =
      FilterRelevantMappings(*mappings_, embeddings, options.top_k);
  return EvaluateBasicPrepared(query, embeddings, relevant, truncated,
                               options);
}

Result<PtqResult> PtqEvaluator::EvaluateBasicPrepared(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    const std::vector<MappingId>& relevant, bool truncated,
    const PtqOptions& options) const {
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  MonotonicScratch* arena = ThreadLocalScratch();
  arena->Reset();
  return EvaluateBasicFlat(query, embeddings, relevant, truncated,
                           *FlatIndexFor(nullptr), *doc_, options, arena);
}

Result<PtqResult> PtqEvaluator::EvaluateWithBlockTree(
    const TwigQuery& query, const BlockTree& tree,
    const PtqOptions& options) const {
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  bool truncated = false;
  const auto embeddings = EmbedQueryInSchema(
      query, mappings_->target(), options.max_embeddings, &truncated);
  const std::vector<MappingId> relevant =
      FilterRelevantMappings(*mappings_, embeddings, options.top_k);
  return EvaluateTreePrepared(query, embeddings, relevant, truncated, tree,
                              options);
}

Result<PtqResult> PtqEvaluator::EvaluateTreePrepared(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    const std::vector<MappingId>& relevant, bool truncated,
    const BlockTree& tree, const PtqOptions& options) const {
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  MonotonicScratch* arena = ThreadLocalScratch();
  arena->Reset();
  return EvaluateTreeFlat(query, embeddings, relevant, truncated,
                          *FlatIndexFor(&tree), *doc_, options, arena);
}

}  // namespace uxm
