#include "query/ptq.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "query/structural_join.h"

namespace uxm {

std::vector<MappingAnswer> PtqResult::CollapseByMatches() const {
  std::vector<MappingAnswer> collapsed;
  for (const MappingAnswer& a : answers) {
    bool merged = false;
    for (MappingAnswer& c : collapsed) {
      if (c.matches == a.matches) {
        c.probability += a.probability;
        merged = true;
        break;
      }
    }
    if (!merged) {
      collapsed.push_back(a);
    }
  }
  std::sort(collapsed.begin(), collapsed.end(),
            [](const MappingAnswer& x, const MappingAnswer& y) {
              return x.probability > y.probability;
            });
  return collapsed;
}

double PtqResult::NonEmptyMass() const {
  double mass = 0.0;
  for (const MappingAnswer& a : answers) {
    if (!a.matches.empty()) mass += a.probability;
  }
  return mass;
}

std::vector<std::vector<SchemaNodeId>> EmbedQueryInSchema(
    const TwigQuery& query, const Schema& schema, size_t max_embeddings,
    bool* truncated) {
  // Enumerate one embedding beyond the cap when the caller wants to know
  // whether the cap actually bit; the extra is dropped before returning.
  const size_t limit = (truncated != nullptr && max_embeddings > 0)
                           ? max_embeddings + 1
                           : max_embeddings;
  if (truncated != nullptr) *truncated = false;
  std::vector<std::vector<SchemaNodeId>> out;
  if (query.size() == 0) return out;

  // Root candidates.
  std::vector<SchemaNodeId> root_cands;
  if (query.absolute_root()) {
    if (schema.name(schema.root()) == query.node(0).label) {
      root_cands.push_back(schema.root());
    }
  } else {
    root_cands = schema.FindByName(query.node(0).label);
  }

  std::vector<SchemaNodeId> embedding(static_cast<size_t>(query.size()),
                                      kInvalidSchemaNode);
  const std::vector<int> pre = query.SubtreeNodes(0);

  auto candidates_for = [&](int qi) -> std::vector<SchemaNodeId> {
    const TwigNode& qn = query.node(qi);
    if (qi == 0) return root_cands;
    const SchemaNodeId pe = embedding[static_cast<size_t>(qn.parent)];
    std::vector<SchemaNodeId> cands;
    if (qn.axis == Axis::kChild) {
      for (SchemaNodeId c : schema.node(pe).children) {
        if (schema.name(c) == qn.label) cands.push_back(c);
      }
    } else {
      for (SchemaNodeId c : schema.FindByName(qn.label)) {
        if (c != pe && schema.IsAncestorOrSelf(pe, c)) cands.push_back(c);
      }
    }
    return cands;
  };

  struct Frame {
    std::vector<SchemaNodeId> cands;
    size_t next = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({candidates_for(pre[0]), 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    const size_t depth = stack.size() - 1;
    const int qi = pre[depth];
    if (f.next >= f.cands.size()) {
      embedding[static_cast<size_t>(qi)] = kInvalidSchemaNode;
      stack.pop_back();
      continue;
    }
    embedding[static_cast<size_t>(qi)] = f.cands[f.next++];
    if (depth + 1 == pre.size()) {
      out.push_back(embedding);
      if (limit > 0 && out.size() >= limit) break;
      continue;
    }
    stack.push_back({candidates_for(pre[depth + 1]), 0});
  }
  if (truncated != nullptr && max_embeddings > 0 &&
      out.size() > max_embeddings) {
    *truncated = true;
    out.resize(max_embeddings);
    // Once per distinct twig, not once per evaluation: a capped twig
    // repeated across a large batch must not flood stderr. (Callers also
    // see PtqResult::truncated_embeddings per answer.)
    if (LogFirstSighting("truncated_embeddings:" + query.ToString())) {
      UXM_LOG(Warning) << "query '" << query.ToString()
                       << "' embeddings truncated at " << max_embeddings
                       << "; its answers may be incomplete";
    }
  }
  return out;
}

bool PtqEvaluator::RewriteBinding(const std::vector<SchemaNodeId>& embedding,
                                  const PossibleMapping& m,
                                  std::vector<SchemaNodeId>* binding) const {
  binding->assign(embedding.size(), kInvalidSchemaNode);
  for (size_t i = 0; i < embedding.size(); ++i) {
    if (embedding[i] == kInvalidSchemaNode) continue;
    const SchemaNodeId src = m.SourceFor(embedding[i]);
    if (src == kInvalidSchemaNode) return false;
    (*binding)[i] = src;
  }
  return true;
}

bool IsMappingRelevant(
    const PossibleMapping& m,
    const std::vector<std::vector<SchemaNodeId>>& embeddings) {
  for (const auto& emb : embeddings) {
    bool all = true;
    for (SchemaNodeId t : emb) {
      if (t != kInvalidSchemaNode && m.SourceFor(t) == kInvalidSchemaNode) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

void SortByProbabilityDescending(const PossibleMappingSet& mappings,
                                 std::vector<MappingId>* ids) {
  std::stable_sort(ids->begin(), ids->end(),
                   [&](MappingId a, MappingId b) {
                     return mappings.mapping(a).probability >
                            mappings.mapping(b).probability;
                   });
}

std::vector<MappingId> FilterRelevantMappings(
    const PossibleMappingSet& mappings,
    const std::vector<std::vector<SchemaNodeId>>& embeddings, int top_k) {
  std::vector<MappingId> relevant;
  for (MappingId mid = 0; mid < mappings.size(); ++mid) {
    if (IsMappingRelevant(mappings.mapping(mid), embeddings)) {
      relevant.push_back(mid);
    }
  }
  if (top_k > 0) {
    // §IV-C: keep only the k most probable relevant mappings.
    SortByProbabilityDescending(mappings, &relevant);
    if (static_cast<int>(relevant.size()) > top_k) {
      relevant.resize(static_cast<size_t>(top_k));
    }
    std::sort(relevant.begin(), relevant.end());
  }
  return relevant;
}

std::vector<MappingId> PtqEvaluator::FilterMappings(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    int top_k) const {
  (void)query;
  return FilterRelevantMappings(*mappings_, embeddings, top_k);
}

namespace {

/// Extracts the distinct output bindings from a projected result.
std::vector<DocNodeId> OutputsOf(const TwigMatcher::ProjectedMatches& pm) {
  std::vector<DocNodeId> out;
  out.reserve(pm.outputs.size());
  for (const auto& [root, o] : pm.outputs) out.push_back(o);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Result<PtqResult> PtqEvaluator::EvaluateBasic(const TwigQuery& query,
                                              const PtqOptions& options) const {
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  bool truncated = false;
  const auto embeddings = EmbedQueryInSchema(
      query, mappings_->target(), options.max_embeddings, &truncated);
  const std::vector<MappingId> relevant =
      FilterRelevantMappings(*mappings_, embeddings, options.top_k);
  return EvaluateBasicPrepared(query, embeddings, relevant, truncated,
                               options);
}

Result<PtqResult> PtqEvaluator::EvaluateBasicPrepared(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    const std::vector<MappingId>& relevant, bool truncated,
    const PtqOptions& options) const {
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  TwigMatcher matcher(doc_, options.match);
  PtqResult result;
  result.truncated_embeddings = truncated;
  std::vector<SchemaNodeId> binding;
  for (MappingId mid : relevant) {
    const PossibleMapping& m = mappings_->mapping(mid);
    std::vector<DocNodeId> all;
    for (const auto& emb : embeddings) {
      if (!RewriteBinding(emb, m, &binding)) continue;
      const auto pm = matcher.MatchProjected(query, binding, 0);
      const auto outs = OutputsOf(pm);
      all.insert(all.end(), outs.begin(), outs.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    result.answers.push_back(
        MappingAnswer{mid, m.probability, std::move(all)});
  }
  return result;
}

void PtqEvaluator::EvalTreeRec(
    const TwigQuery& query, const std::vector<SchemaNodeId>& embedding,
    const BlockTree& tree, const TwigMatcher& matcher, int q_node,
    const std::vector<MappingId>& active,
    std::vector<std::shared_ptr<TwigMatcher::ProjectedMatches>>* out) const {
  using Projected = TwigMatcher::ProjectedMatches;
  const Schema& target = mappings_->target();
  const Document& doc = doc_->doc();
  const SchemaNodeId t = embedding[static_cast<size_t>(q_node)];
  const std::vector<int> sub_nodes = query.SubtreeNodes(q_node);

  // find_node(q.root, H): the paper's hash lookup by target path. Two
  // target nodes may share a label path (duplicate tags), in which case
  // H resolves the path to ONE of them — whose c-blocks cover a
  // different subtree than t's. Only take the block fast path when the
  // hash resolves to this embedding's own node; otherwise fall through
  // to direct per-mapping evaluation, which is always correct.
  const SchemaNodeId hashed = tree.FindNodeByPath(target.path(t));
  if (hashed == t) {
    // query_subtree (Algorithm 4): evaluate the subquery once per c-block
    // and replicate the result to every mapping sharing the block.
    std::vector<uint8_t> assigned(static_cast<size_t>(mappings_->size()), 0);
    std::vector<uint8_t> is_active(static_cast<size_t>(mappings_->size()), 0);
    for (MappingId mid : active) is_active[static_cast<size_t>(mid)] = 1;

    for (const CBlock& b : tree.BlocksAt(hashed)) {
      std::vector<SchemaNodeId> binding(static_cast<size_t>(query.size()),
                                        kInvalidSchemaNode);
      for (int qi : sub_nodes) {
        const SchemaNodeId ty = embedding[static_cast<size_t>(qi)];
        auto it = std::lower_bound(
            b.corrs.begin(), b.corrs.end(), ty,
            [](const BlockCorr& c, SchemaNodeId y) { return c.target < y; });
        // A c-block covers the anchor's whole subtree, so the
        // correspondence exists.
        binding[static_cast<size_t>(qi)] = it->source;
      }
      auto y = std::make_shared<Projected>(
          matcher.MatchProjected(query, binding, q_node));
      for (MappingId mid : b.mappings) {
        if (!is_active[static_cast<size_t>(mid)]) continue;
        if (assigned[static_cast<size_t>(mid)]) continue;
        (*out)[static_cast<size_t>(mid)] = y;
        assigned[static_cast<size_t>(mid)] = 1;
      }
    }
    // Mappings not covered by any block: evaluate directly.
    std::vector<SchemaNodeId> binding;
    for (MappingId mid : active) {
      if (assigned[static_cast<size_t>(mid)]) continue;
      const PossibleMapping& m = mappings_->mapping(mid);
      binding.assign(static_cast<size_t>(query.size()), kInvalidSchemaNode);
      bool ok = true;
      for (int qi : sub_nodes) {
        const SchemaNodeId src =
            m.SourceFor(embedding[static_cast<size_t>(qi)]);
        if (src == kInvalidSchemaNode) {
          ok = false;
          break;
        }
        binding[static_cast<size_t>(qi)] = src;
      }
      auto y = std::make_shared<Projected>();
      if (ok) *y = matcher.MatchProjected(query, binding, q_node);
      (*out)[static_cast<size_t>(mid)] = std::move(y);
    }
    return;
  }

  const TwigNode& qn = query.node(q_node);
  const bool is_output_here = query.output_node() == q_node;
  if (qn.children.empty()) {
    // Single-node subquery: candidates per mapping directly.
    for (MappingId mid : active) {
      const PossibleMapping& m = mappings_->mapping(mid);
      auto y = std::make_shared<Projected>();
      const SchemaNodeId src = m.SourceFor(t);
      if (src != kInvalidSchemaNode) {
        y->roots = matcher.Candidates(query, q_node, src);
      }
      // Output tracking: is the output node inside this (leaf) subquery?
      if (is_output_here) {
        y->has_output = true;
        for (DocNodeId d : y->roots) y->outputs.emplace_back(d, d);
      }
      (*out)[static_cast<size_t>(mid)] = std::move(y);
    }
    return;
  }

  // split_query: q0 = root alone; recurse on children; recombine with
  // region checks (the stack_join step of Algorithm 4).
  std::vector<std::vector<std::shared_ptr<Projected>>> child_out;
  child_out.reserve(qn.children.size());
  for (int c : qn.children) {
    std::vector<std::shared_ptr<Projected>> co(
        static_cast<size_t>(mappings_->size()));
    EvalTreeRec(query, embedding, tree, matcher, c, active, &co);
    child_out.push_back(std::move(co));
  }
  // Which child subtree contains the output node (if any)?
  int output_child_idx = -1;
  if (!is_output_here) {
    for (size_t j = 0; j < qn.children.size(); ++j) {
      for (int qi : query.SubtreeNodes(qn.children[j])) {
        if (qi == query.output_node()) {
          output_child_idx = static_cast<int>(j);
          break;
        }
      }
      if (output_child_idx >= 0) break;
    }
  }

  const bool relax = matcher.options().relax_child_axis;
  for (MappingId mid : active) {
    auto y = std::make_shared<Projected>();
    const PossibleMapping& m = mappings_->mapping(mid);
    const SchemaNodeId src = m.SourceFor(t);
    if (src != kInvalidSchemaNode) {
      const std::vector<DocNodeId> cands =
          matcher.Candidates(query, q_node, src);
      for (DocNodeId d : cands) {
        const DocNode& dn = doc.node(d);
        bool ok = true;
        for (size_t j = 0; j < qn.children.size() && ok; ++j) {
          const int c = qn.children[j];
          const TwigNode& cn = query.node(c);
          const auto& roots =
              child_out[j][static_cast<size_t>(mid)]->roots;
          auto lo = std::lower_bound(roots.begin(), roots.end(), dn.start,
                                     [&](DocNodeId x, int32_t start) {
                                       return doc.node(x).start <= start;
                                     });
          bool found = false;
          for (auto it = lo; it != roots.end(); ++it) {
            if (doc.node(*it).start >= dn.end) break;
            if (cn.axis == Axis::kChild && !relax &&
                doc.node(*it).parent != d) {
              continue;
            }
            found = true;
            break;
          }
          ok = found;
        }
        if (ok) y->roots.push_back(d);
      }
    }
    if (is_output_here) {
      y->has_output = true;
      for (DocNodeId d : y->roots) y->outputs.emplace_back(d, d);
    } else if (output_child_idx >= 0) {
      y->has_output = true;
      // Lift (child-root, output) pairs whose child-root lies under one of
      // our surviving roots.
      const int c = qn.children[static_cast<size_t>(output_child_idx)];
      const TwigNode& cn = query.node(c);
      const auto& pairs = child_out[static_cast<size_t>(output_child_idx)]
                              [static_cast<size_t>(mid)]
                                  ->outputs;
      for (DocNodeId d : y->roots) {
        const DocNode& dn = doc.node(d);
        for (const auto& [rc, o] : pairs) {
          const DocNode& rn = doc.node(rc);
          if (rn.start <= dn.start || rn.start >= dn.end) continue;
          if (cn.axis == Axis::kChild && !relax && rn.parent != d) continue;
          y->outputs.emplace_back(d, o);
        }
      }
      std::sort(y->outputs.begin(), y->outputs.end());
      y->outputs.erase(std::unique(y->outputs.begin(), y->outputs.end()),
                       y->outputs.end());
    }
    (*out)[static_cast<size_t>(mid)] = std::move(y);
  }
}

Result<PtqResult> PtqEvaluator::EvaluateWithBlockTree(
    const TwigQuery& query, const BlockTree& tree,
    const PtqOptions& options) const {
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  bool truncated = false;
  const auto embeddings = EmbedQueryInSchema(
      query, mappings_->target(), options.max_embeddings, &truncated);
  const std::vector<MappingId> relevant =
      FilterRelevantMappings(*mappings_, embeddings, options.top_k);
  return EvaluateTreePrepared(query, embeddings, relevant, truncated, tree,
                              options);
}

Result<PtqResult> PtqEvaluator::EvaluateTreePrepared(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    const std::vector<MappingId>& relevant, bool truncated,
    const BlockTree& tree, const PtqOptions& options) const {
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  TwigMatcher matcher(doc_, options.match);
  std::vector<std::vector<DocNodeId>> acc(
      static_cast<size_t>(mappings_->size()));
  for (const auto& emb : embeddings) {
    std::vector<std::shared_ptr<TwigMatcher::ProjectedMatches>> out(
        static_cast<size_t>(mappings_->size()));
    EvalTreeRec(query, emb, tree, matcher, 0, relevant, &out);
    for (MappingId mid : relevant) {
      const auto& part = out[static_cast<size_t>(mid)];
      if (part == nullptr) continue;
      auto& dst = acc[static_cast<size_t>(mid)];
      for (const auto& [root, o] : part->outputs) dst.push_back(o);
    }
  }
  PtqResult result;
  result.truncated_embeddings = truncated;
  for (MappingId mid : relevant) {
    auto& dst = acc[static_cast<size_t>(mid)];
    std::sort(dst.begin(), dst.end());
    dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
    result.answers.push_back(MappingAnswer{
        mid, mappings_->mapping(mid).probability, std::move(dst)});
  }
  return result;
}

}  // namespace uxm
