#include "query/flat_kernel.h"

#include <algorithm>
#include <cstring>

#include "common/fault_injection.h"

namespace uxm {

MonotonicScratch* ThreadLocalScratch() {
  static thread_local MonotonicScratch scratch;
  return &scratch;
}

namespace {

/// Borrowed view of a sorted doc-node list living in the arena or in the
/// document's own instance lists.
struct Span {
  const DocNodeId* data = nullptr;
  uint32_t size = 0;
  const DocNodeId* begin() const { return data; }
  const DocNodeId* end() const { return data + size; }
};

/// Arena twin of TwigMatcher::ProjectedMatches::outputs entries.
struct OutPair {
  DocNodeId root = kInvalidDocNode;
  DocNodeId out = kInvalidDocNode;
};

inline bool operator<(const OutPair& a, const OutPair& b) {
  return a.root != b.root ? a.root < b.root : a.out < b.out;
}
inline bool operator==(const OutPair& a, const OutPair& b) {
  return a.root == b.root && a.out == b.out;
}

/// Arena twin of TwigMatcher::ProjectedMatches. Zero-initialized memory
/// is a valid empty result, so per-mapping arrays can be memset.
struct FlatProjected {
  Span roots;
  const OutPair* outputs = nullptr;
  uint32_t num_outputs = 0;
  bool has_output = false;
};

/// One evaluation's worth of state: the query's derived indexes (subtree
/// sizes, post-order) computed once, plus the shared bitmaps. All of it
/// lives in the arena and dies at the caller's next Reset.
class FlatEvaluator {
 public:
  FlatEvaluator(const TwigQuery& query, const FlatPairIndex& index,
                const AnnotatedDocument& doc, const PtqOptions& options,
                const std::vector<MappingId>& relevant,
                MonotonicScratch* arena, const KernelCancelContext* cancel)
      : query_(query),
        index_(index),
        doc_(doc),
        options_(options),
        relevant_(relevant),
        arena_(arena),
        cancel_(cancel != nullptr && (cancel->threshold != nullptr ||
                                      cancel->expired != nullptr)
                    ? cancel
                    : nullptr),
        width_(query.size()) {
    // Twig nodes are stored in pre-order, so subtree(i) == the contiguous
    // id range [i, i + sub_size_[i]).
    sub_size_ = arena_->AllocateArray<int>(static_cast<size_t>(width_));
    for (int i = width_ - 1; i >= 0; --i) {
      int size = 1;
      for (int c : query_.node(i).children) {
        size += sub_size_[static_cast<size_t>(c)];
      }
      sub_size_[static_cast<size_t>(i)] = size;
    }
    // Full post-order + positions: the subquery rooted at r occupies the
    // contiguous post-order slice ending at post_pos_[r].
    post_ = arena_->AllocateArray<int>(static_cast<size_t>(width_));
    post_pos_ = arena_->AllocateArray<int>(static_cast<size_t>(width_));
    struct Frame {
      int q;
      size_t ci;
    };
    ScratchVec<Frame> stack(arena_);
    stack.push_back(Frame{0, 0});
    int n = 0;
    while (!stack.empty()) {
      Frame& f = stack[stack.size() - 1];
      const auto& ch = query_.node(f.q).children;
      if (f.ci < ch.size()) {
        const int c = ch[f.ci++];
        stack.push_back(Frame{c, 0});
      } else {
        post_[n] = f.q;
        post_pos_[static_cast<size_t>(f.q)] = n;
        ++n;
        stack.resize_down(stack.size() - 1);
      }
    }
    const size_t m = index_.mappings.num_mappings;
    is_active_ = arena_->AllocateArray<uint8_t>(m);
    std::memset(is_active_, 0, m);
    for (MappingId mid : relevant_) is_active_[static_cast<size_t>(mid)] = 1;
  }

  /// True once a cancellation tick observed the shared threshold above
  /// this evaluation's bound. Sticky: the evaluation is abandoned, its
  /// partial state is never read, and the caller discards the result.
  bool Cancelled() const { return cancelled_; }

  /// Periodic cancellation check, called from the kernel's inner loops.
  /// The first call and every kCancelStride-th thereafter perform one
  /// relaxed load of the shared threshold; in between it is a counter
  /// bump — cheap enough for per-candidate placement without disturbing
  /// the hot path. Polling on the first call makes an evaluation whose
  /// bound is already beaten abort at its first poll site instead of
  /// only after a full stride of work.
  bool Tick() {
    if (cancelled_) return true;
    if (cancel_ == nullptr) return false;
    if (cancel_tick_++ % kCancelStride != 0) return false;
    if (cancel_->threshold != nullptr &&
        cancel_->threshold->load(std::memory_order_relaxed) >
            cancel_->cancel_above) {
      cancelled_ = true;
      return true;
    }
    if (cancel_->expired != nullptr) {
      if (cancel_->expired->load(std::memory_order_relaxed)) {
        cancelled_ = true;
      } else if (cancel_->deadline !=
                     std::chrono::steady_clock::time_point::max() &&
                 std::chrono::steady_clock::now() >= cancel_->deadline) {
        // First poll past the deadline: publish the expiry so every other
        // in-flight kernel and both scheduler layers stop at their next
        // check — a stuck evaluation takes the whole run down with it
        // instead of blowing the deadline alone.
        cancel_->expired->store(true, std::memory_order_relaxed);
        cancelled_ = true;
      }
    }
    return cancelled_;
  }

  /// Mirror of TwigMatcher::Candidates. Without a value predicate the
  /// span aliases the document's instance list directly — no copy.
  Span Candidates(int q_node, SchemaNodeId bound) {
    Span s;
    if (bound == kInvalidSchemaNode) return s;
    const std::vector<DocNodeId>& inst = doc_.InstancesOf(bound);
    const TwigNode& qn = query_.node(q_node);
    if (!qn.value_eq.has_value()) {
      s.data = inst.data();
      s.size = static_cast<uint32_t>(inst.size());
      return s;
    }
    ScratchVec<DocNodeId> out(arena_);
    const Document& d = doc_.doc();
    for (DocNodeId n : inst) {
      if (d.text(n) == *qn.value_eq) out.push_back(n);
    }
    s.data = out.data();
    s.size = static_cast<uint32_t>(out.size());
    return s;
  }

  /// Mirror of TwigMatcher::MatchProjected over spans.
  FlatProjected MatchProjected(const SchemaNodeId* binding, int q_root) {
    const Document& doc = doc_.doc();
    const bool relax = options_.match.relax_child_axis;
    FlatProjected result;

    // sat[q]: sorted doc nodes satisfying the subquery rooted at q.
    Span* sat = arena_->AllocateArray<Span>(static_cast<size_t>(width_));
    const int last = post_pos_[static_cast<size_t>(q_root)];
    const int first = last - sub_size_[static_cast<size_t>(q_root)] + 1;
    for (int pi = first; pi <= last; ++pi) {
      const int q = post_[pi];
      const TwigNode& qn = query_.node(q);
      const Span cands = Candidates(q, binding[q]);
      if (qn.children.empty()) {
        sat[static_cast<size_t>(q)] = cands;
        continue;
      }
      ScratchVec<DocNodeId> out(arena_);
      for (DocNodeId d : cands) {
        // Per-candidate cancellation tick; on cancel the remaining spans
        // stay valid-but-truncated, and the whole result is discarded.
        if (Tick()) break;
        const DocNode& dn = doc.node(d);
        bool ok = true;
        for (int c : qn.children) {
          const TwigNode& cn = query_.node(c);
          const Span& cs = sat[static_cast<size_t>(c)];
          // Any satisfying child-root strictly inside d's region?
          const DocNodeId* lo = std::lower_bound(
              cs.begin(), cs.end(), dn.start,
              [&doc](DocNodeId x, int32_t start) {
                return doc.node(x).start <= start;
              });
          bool found = false;
          for (const DocNodeId* it = lo; it != cs.end(); ++it) {
            if (doc.node(*it).start >= dn.end) break;
            if (cn.axis == Axis::kChild && !relax &&
                doc.node(*it).parent != d) {
              continue;
            }
            found = true;
            break;
          }
          if (!found) {
            ok = false;
            break;
          }
        }
        if (ok) out.push_back(d);
      }
      sat[static_cast<size_t>(q)] =
          Span{out.data(), static_cast<uint32_t>(out.size())};
    }
    result.roots = sat[static_cast<size_t>(q_root)];

    // Output chain from q_root down to the output node, if inside.
    const int output = query_.output_node();
    ScratchVec<int> chain(arena_);
    for (int q = output; q >= 0; q = query_.node(q).parent) {
      chain.push_back(q);
      if (q == q_root) break;
    }
    if (chain.empty() || chain[chain.size() - 1] != q_root) return result;
    if (cancelled_) return result;
    std::reverse(chain.begin(), chain.end());
    result.has_output = true;

    ScratchVec<OutPair> pairs(arena_);
    pairs.reserve(result.roots.size);
    for (DocNodeId r : result.roots) pairs.push_back(OutPair{r, r});
    for (size_t i = 1; i < chain.size(); ++i) {
      const int q = chain[i];
      const TwigNode& qn = query_.node(q);
      const Span& cs = sat[static_cast<size_t>(q)];
      ScratchVec<OutPair> next(arena_);
      for (size_t pi = 0; pi < pairs.size(); ++pi) {
        if (Tick()) break;
        const OutPair p = pairs[pi];
        const DocNode& dn = doc.node(p.out);
        const DocNodeId* lo = std::lower_bound(
            cs.begin(), cs.end(), dn.start,
            [&doc](DocNodeId x, int32_t start) {
              return doc.node(x).start <= start;
            });
        for (const DocNodeId* it = lo; it != cs.end(); ++it) {
          if (doc.node(*it).start >= dn.end) break;
          if (qn.axis == Axis::kChild && !relax &&
              doc.node(*it).parent != p.out) {
            continue;
          }
          next.push_back(OutPair{p.root, *it});
        }
      }
      std::sort(next.begin(), next.end());
      OutPair* uend = std::unique(next.begin(), next.end());
      next.resize_down(static_cast<size_t>(uend - next.begin()));
      pairs = next;
    }
    result.outputs = pairs.data();
    result.num_outputs = static_cast<uint32_t>(pairs.size());
    return result;
  }

  /// One embedding of Algorithm 4: returns the root's per-mapping
  /// projected array (indexed by MappingId; only relevant slots valid).
  /// `root_rep` (indexed by MappingId, relevant slots valid) receives for
  /// every relevant mapping the id of the mapping whose evaluation it
  /// shares at the root — equal reps guarantee equal root results, which
  /// is what lets the caller share answer assembly across mappings.
  const FlatProjected* EvalEmbedding(
      const std::vector<SchemaNodeId>& embedding, MappingId* root_rep) {
    // The legacy recursion visits a node and either (a) takes the c-block
    // fast path, (b) evaluates a leaf, or (c) descends into children and
    // recombines. Replay it iteratively: pass 1 collects the visited
    // nodes in pre-order; pass 2 processes them in reverse, so children's
    // per-mapping arrays exist before their parent recombines them.
    ScratchVec<int> visit(arena_);
    ScratchVec<int> stack(arena_);
    stack.push_back(0);
    while (!stack.empty()) {
      const int q = stack[stack.size() - 1];
      stack.resize_down(stack.size() - 1);
      visit.push_back(q);
      const SchemaNodeId t = embedding[static_cast<size_t>(q)];
      if (index_.tree.self_anchored[static_cast<size_t>(t)]) continue;
      for (int c : query_.node(q).children) stack.push_back(c);
    }
    const size_t m = index_.mappings.num_mappings;
    FlatProjected** outs =
        arena_->AllocateArray<FlatProjected*>(static_cast<size_t>(width_));
    for (size_t vi = visit.size(); vi-- > 0;) {
      // A cancelled EvalNode may leave its per-mapping array partially
      // written; bailing here — before any PARENT node would read those
      // slots — is what keeps cancellation memory-safe (the arrays are
      // not zero-filled).
      if (cancelled_) break;
      const int q = visit[vi];
      // Not zero-filled: EvalNode writes every relevant mapping's slot in
      // all three of its cases (block-assigned + residual covers the
      // anchored path), and only relevant slots are ever read.
      outs[q] = arena_->AllocateArray<FlatProjected>(m);
      EvalNode(embedding, q, outs, q == 0 ? root_rep : nullptr);
    }
    return outs[0];
  }

 private:
  /// Mirror of PtqEvaluator::EvalTreeRec's per-node body; children (when
  /// descended into) are already in outs[child]. When `rep` is non-null
  /// (root call), rep[mid] is set to the mapping whose evaluation mid's
  /// slot shares (itself when unshared).
  void EvalNode(const std::vector<SchemaNodeId>& embedding, int q_node,
                FlatProjected** outs, MappingId* rep) {
    const FlatMappingTable& maps = index_.mappings;
    const FlatBlockTree& tree = index_.tree;
    FlatProjected* out = outs[q_node];
    const SchemaNodeId t = embedding[static_cast<size_t>(q_node)];
    const int sub_end = q_node + sub_size_[static_cast<size_t>(q_node)];

    if (tree.self_anchored[static_cast<size_t>(t)]) {
      // query_subtree (Algorithm 4): evaluate the subquery once per
      // c-block and replicate the result to every mapping sharing the
      // block — a span copy here, where the legacy path refcounts a
      // shared_ptr.
      uint8_t* assigned = arena_->AllocateArray<uint8_t>(maps.num_mappings);
      std::memset(assigned, 0, maps.num_mappings);
      SchemaNodeId* binding =
          arena_->AllocateArray<SchemaNodeId>(static_cast<size_t>(width_));
      const SchemaNodeId* ct = tree.corr_target.data();
      const SchemaNodeId* cs = tree.corr_source.data();
      for (uint32_t b = tree.node_block_begin[static_cast<size_t>(t)];
           b < tree.node_block_begin[static_cast<size_t>(t) + 1]; ++b) {
        if (Tick()) return;
        std::fill(binding, binding + width_, kInvalidSchemaNode);
        const uint32_t cb = tree.corr_begin[b];
        const uint32_t ce = tree.corr_begin[b + 1];
        for (int qi = q_node; qi < sub_end; ++qi) {
          const SchemaNodeId ty = embedding[static_cast<size_t>(qi)];
          // A c-block covers the anchor's whole subtree, so the
          // correspondence exists.
          const SchemaNodeId* it = std::lower_bound(ct + cb, ct + ce, ty);
          binding[qi] = cs[it - ct];
        }
        const FlatProjected y = MatchProjected(binding, q_node);
        MappingId block_rep = -1;
        for (uint32_t mi = tree.map_begin[b]; mi < tree.map_begin[b + 1];
             ++mi) {
          const MappingId mid = tree.block_mappings[mi];
          if (!is_active_[static_cast<size_t>(mid)]) continue;
          if (assigned[static_cast<size_t>(mid)]) continue;
          out[static_cast<size_t>(mid)] = y;
          assigned[static_cast<size_t>(mid)] = 1;
          if (rep != nullptr) {
            if (block_rep < 0) block_rep = mid;
            rep[static_cast<size_t>(mid)] = block_rep;
          }
        }
      }
      // Mappings not covered by any block: evaluate directly.
      for (MappingId mid : relevant_) {
        if (Tick()) return;
        if (assigned[static_cast<size_t>(mid)]) continue;
        const SchemaNodeId* row = maps.Row(mid);
        std::fill(binding, binding + width_, kInvalidSchemaNode);
        bool ok = true;
        for (int qi = q_node; qi < sub_end; ++qi) {
          const SchemaNodeId src = row[embedding[static_cast<size_t>(qi)]];
          if (src == kInvalidSchemaNode) {
            ok = false;
            break;
          }
          binding[qi] = src;
        }
        out[static_cast<size_t>(mid)] =
            ok ? MatchProjected(binding, q_node) : FlatProjected{};
        if (rep != nullptr) rep[static_cast<size_t>(mid)] = mid;
      }
      return;
    }

    const TwigNode& qn = query_.node(q_node);
    const bool is_output_here = query_.output_node() == q_node;
    int output_child_idx = -1;
    if (!is_output_here) {
      const int o = query_.output_node();
      for (size_t j = 0; j < qn.children.size(); ++j) {
        const int c = qn.children[j];
        if (o >= c && o < c + sub_size_[static_cast<size_t>(c)]) {
          output_child_idx = static_cast<int>(j);
          break;
        }
      }
    }

    // Group the relevant mappings by their binding tuple over this
    // subtree's embedding columns. The subquery result is a pure function
    // of that tuple (children included, by induction on the subtree), so
    // each distinct tuple is evaluated once and shared — the non-anchored
    // analogue of a c-block, made cheap by the row-major mapping table.
    const int w = sub_end - q_node;
    const size_t n_rel = relevant_.size();
    SchemaNodeId* tup =
        arena_->AllocateArray<SchemaNodeId>(n_rel * static_cast<size_t>(w));
    for (size_t r = 0; r < n_rel; ++r) {
      const SchemaNodeId* row = maps.Row(relevant_[r]);
      SchemaNodeId* dst = tup + r * static_cast<size_t>(w);
      for (int j = 0; j < w; ++j) {
        dst[j] = row[embedding[static_cast<size_t>(q_node + j)]];
      }
    }
    const size_t tup_bytes = static_cast<size_t>(w) * sizeof(SchemaNodeId);
    uint32_t* order = arena_->AllocateArray<uint32_t>(n_rel);
    for (size_t r = 0; r < n_rel; ++r) order[r] = static_cast<uint32_t>(r);
    std::sort(order, order + n_rel, [&](uint32_t a, uint32_t b) {
      const int c = std::memcmp(tup + a * static_cast<size_t>(w),
                                tup + b * static_cast<size_t>(w), tup_bytes);
      return c != 0 ? c < 0 : a < b;
    });
    for (size_t g = 0; g < n_rel;) {
      if (Tick()) return;
      size_t h = g + 1;
      while (h < n_rel &&
             std::memcmp(tup + order[g] * static_cast<size_t>(w),
                         tup + order[h] * static_cast<size_t>(w),
                         tup_bytes) == 0) {
        ++h;
      }
      const MappingId rep_mid = relevant_[order[g]];
      const FlatProjected y = EvalOneMapping(embedding, q_node, outs, rep_mid,
                                             is_output_here, output_child_idx);
      for (size_t i = g; i < h; ++i) {
        const MappingId mid = relevant_[order[i]];
        out[static_cast<size_t>(mid)] = y;
        if (rep != nullptr) rep[static_cast<size_t>(mid)] = rep_mid;
      }
      g = h;
    }
  }

  /// One mapping's leaf/internal-node evaluation (the per-mapping body of
  /// the legacy EvalTreeRec); children are already in outs[child].
  FlatProjected EvalOneMapping(const std::vector<SchemaNodeId>& embedding,
                               int q_node, FlatProjected** outs,
                               MappingId mid, bool is_output_here,
                               int output_child_idx) {
    const Document& doc = doc_.doc();
    const TwigNode& qn = query_.node(q_node);
    const SchemaNodeId t = embedding[static_cast<size_t>(q_node)];
    const SchemaNodeId src = index_.mappings.Row(mid)[t];
    const bool relax = options_.match.relax_child_axis;
    FlatProjected y;
    if (qn.children.empty()) {
      // Single-node subquery: candidates directly.
      if (src != kInvalidSchemaNode) y.roots = Candidates(q_node, src);
    } else if (src != kInvalidSchemaNode) {
      // split_query: recombine children with region checks (the
      // stack_join step of Algorithm 4).
      ScratchVec<DocNodeId> roots(arena_);
      const Span cands = Candidates(q_node, src);
      for (DocNodeId d : cands) {
        const DocNode& dn = doc.node(d);
        bool ok = true;
        for (size_t j = 0; j < qn.children.size() && ok; ++j) {
          const int c = qn.children[j];
          const TwigNode& cn = query_.node(c);
          const Span& rs = outs[c][static_cast<size_t>(mid)].roots;
          const DocNodeId* lo = std::lower_bound(
              rs.begin(), rs.end(), dn.start,
              [&doc](DocNodeId x, int32_t start) {
                return doc.node(x).start <= start;
              });
          bool found = false;
          for (const DocNodeId* it = lo; it != rs.end(); ++it) {
            if (doc.node(*it).start >= dn.end) break;
            if (cn.axis == Axis::kChild && !relax &&
                doc.node(*it).parent != d) {
              continue;
            }
            found = true;
            break;
          }
          ok = found;
        }
        if (ok) roots.push_back(d);
      }
      y.roots = Span{roots.data(), static_cast<uint32_t>(roots.size())};
    }
    if (is_output_here) {
      y.has_output = true;
      OutPair* pairs = arena_->AllocateArray<OutPair>(y.roots.size);
      for (uint32_t i = 0; i < y.roots.size; ++i) {
        pairs[i] = OutPair{y.roots.data[i], y.roots.data[i]};
      }
      y.outputs = pairs;
      y.num_outputs = y.roots.size;
    } else if (output_child_idx >= 0 && !qn.children.empty()) {
      y.has_output = true;
      // Lift (child-root, output) pairs whose child-root lies under one
      // of our surviving roots.
      const int c = qn.children[static_cast<size_t>(output_child_idx)];
      const TwigNode& cn = query_.node(c);
      const FlatProjected& co = outs[c][static_cast<size_t>(mid)];
      ScratchVec<OutPair> lifted(arena_);
      for (DocNodeId d : y.roots) {
        const DocNode& dn = doc.node(d);
        for (uint32_t pi = 0; pi < co.num_outputs; ++pi) {
          const OutPair p = co.outputs[pi];
          const DocNode& rn = doc.node(p.root);
          if (rn.start <= dn.start || rn.start >= dn.end) continue;
          if (cn.axis == Axis::kChild && !relax && rn.parent != d) continue;
          lifted.push_back(OutPair{d, p.out});
        }
      }
      std::sort(lifted.begin(), lifted.end());
      OutPair* uend = std::unique(lifted.begin(), lifted.end());
      lifted.resize_down(static_cast<size_t>(uend - lifted.begin()));
      y.outputs = lifted.data();
      y.num_outputs = static_cast<uint32_t>(lifted.size());
    }
    return y;
  }

  /// Inner-loop steps between threshold loads (see Tick). Small enough
  /// that a passed-over item stops within microseconds, large enough that
  /// the check is invisible next to the region joins it gates.
  static constexpr uint32_t kCancelStride = 64;

  const TwigQuery& query_;
  const FlatPairIndex& index_;
  const AnnotatedDocument& doc_;
  const PtqOptions& options_;
  const std::vector<MappingId>& relevant_;
  MonotonicScratch* arena_;
  const KernelCancelContext* cancel_;
  uint32_t cancel_tick_ = 0;
  bool cancelled_ = false;
  const int width_;
  int* sub_size_ = nullptr;
  int* post_ = nullptr;
  int* post_pos_ = nullptr;
  uint8_t* is_active_ = nullptr;
};

}  // namespace

namespace {

Status KernelCancelledStatus() {
  return Status::Cancelled(
      "evaluation abandoned mid-kernel by the corpus top-k threshold");
}

}  // namespace

Result<PtqResult> EvaluateBasicFlat(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    const std::vector<MappingId>& relevant, bool truncated,
    const FlatPairIndex& index, const AnnotatedDocument& doc,
    const PtqOptions& options, MonotonicScratch* arena,
    const KernelCancelContext* cancel) {
  UXM_INJECT_FAULT(FaultSite::kKernelEval);
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  PtqResult result;
  result.truncated_embeddings = truncated;
  if (relevant.empty()) return result;
  FlatEvaluator ev(query, index, doc, options, relevant, arena, cancel);
  SchemaNodeId* binding =
      arena->AllocateArray<SchemaNodeId>(static_cast<size_t>(query.size()));
  for (MappingId mid : relevant) {
    if (ev.Cancelled()) return KernelCancelledStatus();
    const SchemaNodeId* row = index.mappings.Row(mid);
    ScratchVec<DocNodeId> all(arena);
    for (const auto& emb : embeddings) {
      if (ev.Cancelled()) return KernelCancelledStatus();
      // RewriteBinding: unmapped node => this embedding yields nothing
      // under this mapping.
      bool ok = true;
      for (size_t i = 0; i < emb.size(); ++i) {
        binding[i] = kInvalidSchemaNode;
        if (emb[i] == kInvalidSchemaNode) continue;
        const SchemaNodeId src = row[emb[i]];
        if (src == kInvalidSchemaNode) {
          ok = false;
          break;
        }
        binding[i] = src;
      }
      if (!ok) continue;
      const FlatProjected pm = ev.MatchProjected(binding, 0);
      // OutputsOf: distinct output bindings, sorted.
      ScratchVec<DocNodeId> outs(arena);
      outs.reserve(pm.num_outputs);
      for (uint32_t i = 0; i < pm.num_outputs; ++i) {
        outs.push_back(pm.outputs[i].out);
      }
      std::sort(outs.begin(), outs.end());
      DocNodeId* uend = std::unique(outs.begin(), outs.end());
      for (DocNodeId* it = outs.begin(); it != uend; ++it) {
        all.push_back(*it);
      }
    }
    std::sort(all.begin(), all.end());
    DocNodeId* uend = std::unique(all.begin(), all.end());
    result.answers.push_back(MappingAnswer{
        mid, index.mappings.probability[static_cast<size_t>(mid)],
        std::vector<DocNodeId>(all.begin(), uend)});
  }
  return result;
}

Result<PtqResult> EvaluateTreeFlat(
    const TwigQuery& query,
    const std::vector<std::vector<SchemaNodeId>>& embeddings,
    const std::vector<MappingId>& relevant, bool truncated,
    const FlatPairIndex& index, const AnnotatedDocument& doc,
    const PtqOptions& options, MonotonicScratch* arena,
    const KernelCancelContext* cancel) {
  UXM_INJECT_FAULT(FaultSite::kKernelEval);
  if (query.size() == 0) return Status::InvalidArgument("empty query");
  PtqResult result;
  result.truncated_embeddings = truncated;
  if (relevant.empty()) return result;
  FlatEvaluator ev(query, index, doc, options, relevant, arena, cancel);
  const size_t m = index.mappings.num_mappings;
  const size_t n_rel = relevant.size();
  const size_t n_emb = embeddings.size();
  const FlatProjected** per_emb =
      arena->AllocateArray<const FlatProjected*>(n_emb);
  MappingId* rep = arena->AllocateArray<MappingId>(m);
  // fp row r = the root representative chosen for relevant[r] in each
  // embedding. Mappings with equal rows got identical root results
  // everywhere, so they share one sort+unique answer assembly below.
  MappingId* fp = arena->AllocateArray<MappingId>(n_rel * n_emb);
  for (size_t e = 0; e < n_emb; ++e) {
    per_emb[e] = ev.EvalEmbedding(embeddings[e], rep);
    // A cancelled EvalEmbedding leaves rep (and the projected arrays)
    // partially written — bail before reading either.
    if (ev.Cancelled()) return KernelCancelledStatus();
    for (size_t r = 0; r < n_rel; ++r) {
      fp[r * n_emb + e] = rep[static_cast<size_t>(relevant[r])];
    }
  }
  for (size_t r = 0; r < n_rel; ++r) {
    result.answers.push_back(MappingAnswer{
        relevant[r],
        index.mappings.probability[static_cast<size_t>(relevant[r])],
        {}});
  }
  const size_t fp_bytes = n_emb * sizeof(MappingId);
  uint32_t* order = arena->AllocateArray<uint32_t>(n_rel);
  for (size_t r = 0; r < n_rel; ++r) order[r] = static_cast<uint32_t>(r);
  std::sort(order, order + n_rel, [&](uint32_t a, uint32_t b) {
    const int c =
        std::memcmp(fp + a * n_emb, fp + b * n_emb, fp_bytes);
    return c != 0 ? c < 0 : a < b;
  });
  for (size_t g = 0; g < n_rel;) {
    size_t h = g + 1;
    while (h < n_rel && std::memcmp(fp + order[g] * n_emb,
                                    fp + order[h] * n_emb, fp_bytes) == 0) {
      ++h;
    }
    const size_t rep_mid = static_cast<size_t>(relevant[order[g]]);
    ScratchVec<DocNodeId> all(arena);
    for (size_t e = 0; e < n_emb; ++e) {
      const FlatProjected& part = per_emb[e][rep_mid];
      for (uint32_t i = 0; i < part.num_outputs; ++i) {
        all.push_back(part.outputs[i].out);
      }
    }
    std::sort(all.begin(), all.end());
    DocNodeId* uend = std::unique(all.begin(), all.end());
    for (size_t i = g; i < h; ++i) {
      result.answers[order[i]].matches.assign(all.begin(), uend);
    }
    g = h;
  }
  return result;
}

}  // namespace uxm
