// Probabilistic Twig Query evaluation (§IV). A PTQ is a twig pattern on
// the target schema T, answered against a document conforming to the
// source schema S, once per possible mapping:
//
//   R = { (R_i, p_i) : m_i relevant }        (Definition 4)
//
// Three evaluators are provided:
//   - EvaluateBasic        — Algorithm 3 (query_basic): rewrite + match
//     independently per mapping;
//   - EvaluateWithBlockTree — Algorithm 4 (twig_query_tree): subqueries
//     anchored at block-tree nodes are evaluated once per c-block and the
//     result replicated to every mapping sharing the block; elsewhere the
//     query is split and recombined with stack-based structural joins;
//   - top-k PTQ            — §IV-C: restrict to the k most probable
//     relevant mappings before evaluation.
//
// Query-to-schema resolution: a twig's labels may occur at several places
// in T (e.g. ContactName in Figure 1), so the query is first *embedded*
// into the target schema — every assignment of schema elements to query
// nodes consistent with the labels and axes. Each embedding is rewritten
// per mapping; answers are unioned. This mirrors the constraint-based
// rewriting of [2] on our tree-shaped schemas.
#ifndef UXM_QUERY_PTQ_H_
#define UXM_QUERY_PTQ_H_

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "blocktree/block_tree.h"
#include "common/status.h"
#include "mapping/possible_mapping.h"
#include "query/annotated_document.h"
#include "query/twig_matcher.h"
#include "query/twig_query.h"

namespace uxm {

struct FlatPairIndex;

/// \brief Answer for one mapping: (R_i, p_i).
///
/// R_i is reported under output-node semantics: the distinct document
/// nodes that bind the query's distinguished node in some full match of
/// the (rewritten) twig — exactly the intro example's answers, where
/// //IP//ICN returns the ContactName instances "Cathy"/"Bob"/"Alice".
struct MappingAnswer {
  MappingId mapping = -1;
  double probability = 0.0;
  std::vector<DocNodeId> matches;  ///< R_i, sorted, distinct; may be empty.
};

/// \brief Full PTQ result.
struct PtqResult {
  std::vector<MappingAnswer> answers;

  /// True if the PtqOptions::max_embeddings cap cut the schema-embedding
  /// enumeration short, i.e. the answers may be incomplete. Capped answers
  /// were previously indistinguishable from complete ones.
  bool truncated_embeddings = false;

  /// Groups answers with identical match sets and sums their
  /// probabilities (the collapsed view of the intro example, where
  /// {("Bob", .3), ("Alice", .2)} aggregates over mappings).
  std::vector<MappingAnswer> CollapseByMatches() const;

  /// Total probability mass of answers with at least one match.
  double NonEmptyMass() const;
};

/// \brief Evaluation options.
struct PtqOptions {
  /// k > 0 enables top-k PTQ: only the k most probable relevant mappings
  /// are evaluated (§IV-C). 0 evaluates all relevant mappings.
  int top_k = 0;
  /// Cap on schema embeddings considered per query (0 = unlimited).
  size_t max_embeddings = 256;
  TwigMatchOptions match;
};

/// \brief Embeds a twig query into a schema: every assignment of schema
/// elements to query nodes consistent with labels and axes. Exposed for
/// testing. `embedding[i]` is the schema element for query node i.
/// When `truncated` is non-null it is set to whether the max_embeddings
/// cap cut the enumeration short (one extra embedding is probed to tell),
/// and a warning is logged when it did.
std::vector<std::vector<SchemaNodeId>> EmbedQueryInSchema(
    const TwigQuery& query, const Schema& schema, size_t max_embeddings,
    bool* truncated = nullptr);

/// \brief The per-mapping relevance predicate: true iff some embedding
/// is fully mapped under `m`. The ONE definition shared by
/// FilterRelevantMappings and the plan layer's lazy memo
/// (plan/query_plan.h) — their exact agreement is what makes
/// early-termination top-k exact.
bool IsMappingRelevant(
    const PossibleMapping& m,
    const std::vector<std::vector<SchemaNodeId>>& embeddings);

/// \brief Stable-sorts `ids` most-probable-first; equal probabilities
/// keep their prior order (so ascending-id input ties by ascending id).
/// The ONE §IV-C ranking order, shared by FilterRelevantMappings and
/// MappingOrder::Build.
void SortByProbabilityDescending(const PossibleMappingSet& mappings,
                                 std::vector<MappingId>* ids);

/// \brief filter_mappings (+ the §IV-C top-k restriction): ids of the
/// mappings under which some embedding is fully mapped, ascending.
/// top_k > 0 keeps only the k most probable of them (stable order), still
/// returned ascending by id.
std::vector<MappingId> FilterRelevantMappings(
    const PossibleMappingSet& mappings,
    const std::vector<std::vector<SchemaNodeId>>& embeddings, int top_k);

/// \brief PTQ evaluator over a fixed (mapping set, document) pair.
///
/// A convenience front-end for callers that hold build-time products
/// (PossibleMappingSet + BlockTree) rather than a prepared pair: it
/// flattens them into a FlatPairIndex on first use (memoized per tree)
/// and evaluates through the one flat kernel (query/flat_kernel.h) that
/// also serves the execution driver — there is no second evaluation
/// code path to drift from it.
class PtqEvaluator {
 public:
  /// `mappings` relates S and T; `doc` must be annotated against S.
  PtqEvaluator(const PossibleMappingSet* mappings,
               const AnnotatedDocument* doc)
      : mappings_(mappings), doc_(doc) {}

  /// Algorithm 3 (query_basic).
  Result<PtqResult> EvaluateBasic(const TwigQuery& query,
                                  const PtqOptions& options = {}) const;

  /// Algorithm 4 (twig_query_tree). `tree` must be built from the same
  /// mapping set. Produces exactly the same answers as EvaluateBasic.
  Result<PtqResult> EvaluateWithBlockTree(const TwigQuery& query,
                                          const BlockTree& tree,
                                          const PtqOptions& options = {}) const;

  /// Algorithm 3 with precompiled inputs: `embeddings` and `relevant` as
  /// produced by EmbedQueryInSchema / FilterRelevantMappings (or a
  /// plan/query_plan.h QueryPlan), so nothing is re-derived per call.
  /// `truncated` is carried into the result's truncated_embeddings.
  Result<PtqResult> EvaluateBasicPrepared(
      const TwigQuery& query,
      const std::vector<std::vector<SchemaNodeId>>& embeddings,
      const std::vector<MappingId>& relevant, bool truncated,
      const PtqOptions& options = {}) const;

  /// Algorithm 4 with precompiled inputs (see EvaluateBasicPrepared).
  Result<PtqResult> EvaluateTreePrepared(
      const TwigQuery& query,
      const std::vector<std::vector<SchemaNodeId>>& embeddings,
      const std::vector<MappingId>& relevant, bool truncated,
      const BlockTree& tree, const PtqOptions& options = {}) const;

  /// filter_mappings (+ the top-k restriction of §IV-C): delegates to
  /// FilterRelevantMappings — ids ascending, restricted to the k most
  /// probable when top_k > 0.
  std::vector<MappingId> FilterMappings(
      const TwigQuery& query,
      const std::vector<std::vector<SchemaNodeId>>& embeddings,
      int top_k) const;

 private:
  /// The memoized flat index for `tree` (null = Algorithm-3-only index),
  /// built on first use. Benches call Evaluate* in hot loops with one
  /// evaluator and one tree, so flattening must not recur per call.
  std::shared_ptr<const FlatPairIndex> FlatIndexFor(
      const BlockTree* tree) const;

  const PossibleMappingSet* mappings_;
  const AnnotatedDocument* doc_;

  mutable std::mutex flat_mu_;
  mutable std::vector<std::pair<const BlockTree*,
                                std::shared_ptr<const FlatPairIndex>>>
      flat_cache_;
};

}  // namespace uxm

#endif  // UXM_QUERY_PTQ_H_
