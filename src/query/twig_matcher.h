// Twig pattern matching against an annotated document. A query whose
// nodes are *bound* to source schema elements (the output of rewriting a
// target query through a mapping) is matched by enumerating all node
// tuples satisfying labels, predicates, and the '/'/'//' structural
// relationships — the "match" of §IV-A.
#ifndef UXM_QUERY_TWIG_MATCHER_H_
#define UXM_QUERY_TWIG_MATCHER_H_

#include <vector>

#include "query/annotated_document.h"
#include "query/twig_query.h"

namespace uxm {

/// A match assigns a document node to every query node; index i holds the
/// document node matched to query node i (slots outside the evaluated
/// subquery hold kInvalidDocNode).
using TwigMatch = std::vector<DocNodeId>;

/// \brief Options bounding match enumeration.
struct TwigMatchOptions {
  /// Safety cap on the number of matches enumerated per (query, mapping)
  /// pair; 0 = unlimited. Matches beyond the cap are dropped.
  size_t max_matches = 0;
  /// Rewritten queries run against the *source* document, whose structure
  /// differs from the target schema's: a '/' edge in the target query
  /// generally corresponds to a longer downward path in the source (the
  /// constraint-based rewriting of [2] inserts the intermediate steps).
  /// When true (the default, used by PTQ evaluation), '/' edges are
  /// therefore matched as ancestor-descendant. Set to false to match a
  /// twig with strict parent-child semantics on its own schema.
  bool relax_child_axis = true;
};

/// \brief Matches bound twigs against an annotated document.
class TwigMatcher {
 public:
  explicit TwigMatcher(const AnnotatedDocument* doc,
                       TwigMatchOptions options = {})
      : doc_(doc), options_(options) {}

  /// Matches the subquery rooted at `q_root` (default: whole query).
  /// `binding[i]` is the source schema element bound to query node i;
  /// any node of the subquery bound to kInvalidSchemaNode yields no
  /// matches. Results are full-width TwigMatch vectors.
  std::vector<TwigMatch> Match(const TwigQuery& query,
                               const std::vector<SchemaNodeId>& binding,
                               int q_root = 0) const;

  /// Candidate document nodes for a single bound query node: instances of
  /// the bound element filtered by the node's value predicate. Sorted by
  /// document order.
  std::vector<DocNodeId> Candidates(const TwigQuery& query, int q_node,
                                    SchemaNodeId bound) const;

  /// \brief Projected (output-node) matching result for a subquery.
  ///
  /// `roots` are the document nodes that can bind the subquery root such
  /// that the whole subquery matches below them (existential semantics).
  /// When the query's output node lies inside the subquery, `has_output`
  /// is true and `outputs` holds distinct (root, output-binding) pairs.
  struct ProjectedMatches {
    std::vector<DocNodeId> roots;  ///< sorted by document order
    bool has_output = false;
    std::vector<std::pair<DocNodeId, DocNodeId>> outputs;  ///< sorted, unique
  };

  /// Matches the subquery rooted at `q_root` under output-node semantics.
  /// This is the evaluation primitive used by PTQ (Definition 4's answers
  /// projected to the query's distinguished node); it avoids enumerating
  /// full node tuples and is therefore immune to cross-product blowup.
  ProjectedMatches MatchProjected(const TwigQuery& query,
                                  const std::vector<SchemaNodeId>& binding,
                                  int q_root = 0) const;

  const AnnotatedDocument& doc() const { return *doc_; }
  const TwigMatchOptions& options() const { return options_; }

 private:
  const AnnotatedDocument* doc_;
  TwigMatchOptions options_;
};

/// Sorts and deduplicates a match list in place (used when answers from
/// several schema embeddings are unioned).
void SortAndDedupeMatches(std::vector<TwigMatch>* matches);

}  // namespace uxm

#endif  // UXM_QUERY_TWIG_MATCHER_H_
