#include "query/twig_matcher.h"

#include <algorithm>

namespace uxm {

std::vector<DocNodeId> TwigMatcher::Candidates(const TwigQuery& query,
                                               int q_node,
                                               SchemaNodeId bound) const {
  std::vector<DocNodeId> out;
  if (bound == kInvalidSchemaNode) return out;
  const std::vector<DocNodeId>& inst = doc_->InstancesOf(bound);
  const TwigNode& qn = query.node(q_node);
  if (!qn.value_eq.has_value()) return inst;
  for (DocNodeId n : inst) {
    if (doc_->doc().text(n) == *qn.value_eq) out.push_back(n);
  }
  return out;
}

std::vector<TwigMatch> TwigMatcher::Match(
    const TwigQuery& query, const std::vector<SchemaNodeId>& binding,
    int q_root) const {
  const Document& doc = doc_->doc();
  const int width = query.size();

  // Bottom-up over the subquery: matches[q] holds the full-width tuples of
  // the subquery rooted at q, sorted by the doc node matched at q.
  std::vector<std::vector<TwigMatch>> matches(static_cast<size_t>(width));
  bool overflow = false;

  // Post-order traversal of the subquery.
  std::vector<int> order;
  {
    std::vector<std::pair<int, size_t>> stack{{q_root, 0}};
    while (!stack.empty()) {
      auto& [q, ci] = stack.back();
      const auto& ch = query.node(q).children;
      if (ci < ch.size()) {
        stack.push_back({ch[ci++], 0});
      } else {
        order.push_back(q);
        stack.pop_back();
      }
    }
  }

  for (int q : order) {
    const TwigNode& qn = query.node(q);
    const std::vector<DocNodeId> cands =
        Candidates(query, q, binding[static_cast<size_t>(q)]);
    std::vector<TwigMatch>& out = matches[static_cast<size_t>(q)];
    if (qn.children.empty()) {
      out.reserve(cands.size());
      for (DocNodeId d : cands) {
        TwigMatch m(static_cast<size_t>(width), kInvalidDocNode);
        m[static_cast<size_t>(q)] = d;
        out.push_back(std::move(m));
      }
      continue;
    }
    // For each candidate, select per-child sub-matches whose roots lie in
    // the candidate's region, then take the cross product.
    for (DocNodeId d : cands) {
      const DocNode& dn = doc.node(d);
      std::vector<std::vector<const TwigMatch*>> per_child;
      per_child.reserve(qn.children.size());
      bool dead = false;
      for (int c : qn.children) {
        const TwigNode& cn = query.node(c);
        const auto& child_matches = matches[static_cast<size_t>(c)];
        // child_matches are sorted by their root doc node's start; binary
        // search the region (dn.start, dn.end).
        auto lo = std::lower_bound(
            child_matches.begin(), child_matches.end(), dn.start,
            [&](const TwigMatch& m, int32_t start) {
              return doc.node(m[static_cast<size_t>(c)]).start <= start;
            });
        std::vector<const TwigMatch*> selected;
        for (auto it = lo; it != child_matches.end(); ++it) {
          const DocNodeId root = (*it)[static_cast<size_t>(c)];
          if (doc.node(root).start >= dn.end) break;
          if (cn.axis == Axis::kChild && !options_.relax_child_axis &&
              doc.node(root).parent != d) {
            continue;
          }
          selected.push_back(&*it);
        }
        if (selected.empty()) {
          dead = true;
          break;
        }
        per_child.push_back(std::move(selected));
      }
      if (dead) continue;
      // Cross product over children.
      std::vector<size_t> odo(per_child.size(), 0);
      for (;;) {
        TwigMatch m(static_cast<size_t>(width), kInvalidDocNode);
        m[static_cast<size_t>(q)] = d;
        for (size_t k = 0; k < per_child.size(); ++k) {
          const TwigMatch& cm = *per_child[k][odo[k]];
          for (size_t i = 0; i < cm.size(); ++i) {
            if (cm[i] != kInvalidDocNode) m[i] = cm[i];
          }
        }
        out.push_back(std::move(m));
        if (options_.max_matches > 0 && out.size() >= options_.max_matches) {
          overflow = true;
          break;
        }
        size_t k = 0;
        while (k < per_child.size()) {
          ++odo[k];
          if (odo[k] < per_child[k].size()) break;
          odo[k] = 0;
          ++k;
        }
        if (k == per_child.size()) break;
      }
      if (overflow) break;
    }
    // Candidates are iterated in document order, so `out` stays sorted by
    // the doc node at q.
  }
  return std::move(matches[static_cast<size_t>(q_root)]);
}

TwigMatcher::ProjectedMatches TwigMatcher::MatchProjected(
    const TwigQuery& query, const std::vector<SchemaNodeId>& binding,
    int q_root) const {
  const Document& doc = doc_->doc();
  ProjectedMatches result;

  // Post-order over the subquery.
  std::vector<int> order;
  {
    std::vector<std::pair<int, size_t>> stack{{q_root, 0}};
    while (!stack.empty()) {
      auto& [q, ci] = stack.back();
      const auto& ch = query.node(q).children;
      if (ci < ch.size()) {
        stack.push_back({ch[ci++], 0});
      } else {
        order.push_back(q);
        stack.pop_back();
      }
    }
  }

  // sat[q]: sorted doc nodes that satisfy the subquery rooted at q.
  std::vector<std::vector<DocNodeId>> sat(
      static_cast<size_t>(query.size()));
  for (int q : order) {
    const TwigNode& qn = query.node(q);
    std::vector<DocNodeId> cands =
        Candidates(query, q, binding[static_cast<size_t>(q)]);
    if (qn.children.empty()) {
      sat[static_cast<size_t>(q)] = std::move(cands);
      continue;
    }
    std::vector<DocNodeId>& out = sat[static_cast<size_t>(q)];
    for (DocNodeId d : cands) {
      const DocNode& dn = doc.node(d);
      bool ok = true;
      for (int c : qn.children) {
        const TwigNode& cn = query.node(c);
        const auto& cs = sat[static_cast<size_t>(c)];
        // Any satisfying child-root strictly inside d's region?
        auto lo = std::lower_bound(cs.begin(), cs.end(), dn.start,
                                   [&](DocNodeId x, int32_t start) {
                                     return doc.node(x).start <= start;
                                   });
        bool found = false;
        for (auto it = lo; it != cs.end(); ++it) {
          if (doc.node(*it).start >= dn.end) break;
          if (cn.axis == Axis::kChild && !options_.relax_child_axis &&
              doc.node(*it).parent != d) {
            continue;
          }
          found = true;
          break;
        }
        if (!found) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(d);
    }
  }
  result.roots = std::move(sat[static_cast<size_t>(q_root)]);

  // If the output node lies inside this subquery, walk the query-node
  // chain from q_root down to it, tracking (root, current) pairs.
  const int output = query.output_node();
  std::vector<int> chain;
  for (int q = output; q >= 0; q = query.node(q).parent) {
    chain.push_back(q);
    if (q == q_root) break;
  }
  if (chain.empty() || chain.back() != q_root) return result;  // not inside
  std::reverse(chain.begin(), chain.end());
  result.has_output = true;

  std::vector<std::pair<DocNodeId, DocNodeId>> pairs;
  pairs.reserve(result.roots.size());
  for (DocNodeId r : result.roots) pairs.emplace_back(r, r);
  for (size_t i = 1; i < chain.size(); ++i) {
    const int q = chain[i];
    const TwigNode& qn = query.node(q);
    const auto& cs = sat[static_cast<size_t>(q)];
    std::vector<std::pair<DocNodeId, DocNodeId>> next;
    for (const auto& [root, cur] : pairs) {
      const DocNode& dn = doc.node(cur);
      auto lo = std::lower_bound(cs.begin(), cs.end(), dn.start,
                                 [&](DocNodeId x, int32_t start) {
                                   return doc.node(x).start <= start;
                                 });
      for (auto it = lo; it != cs.end(); ++it) {
        if (doc.node(*it).start >= dn.end) break;
        if (qn.axis == Axis::kChild && !options_.relax_child_axis &&
            doc.node(*it).parent != cur) {
          continue;
        }
        next.emplace_back(root, *it);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    pairs = std::move(next);
  }
  result.outputs = std::move(pairs);
  return result;
}

void SortAndDedupeMatches(std::vector<TwigMatch>* matches) {
  std::sort(matches->begin(), matches->end());
  matches->erase(std::unique(matches->begin(), matches->end()),
                 matches->end());
}

}  // namespace uxm
