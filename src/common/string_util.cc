#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace uxm {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<std::string> TokenizeName(std::string_view name) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&]() {
    if (!cur.empty()) {
      tokens.push_back(ToLower(cur));
      cur.clear();
    }
  };
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const unsigned char uc = static_cast<unsigned char>(c);
    if (c == '_' || c == '-' || c == '.' || c == ' ' || c == '/') {
      flush();
      continue;
    }
    if (std::isdigit(uc)) {
      // Digit runs become their own token.
      if (!cur.empty() && !std::isdigit(static_cast<unsigned char>(cur.back()))) flush();
      cur.push_back(c);
      continue;
    }
    if (std::isupper(uc)) {
      // A new uppercase letter starts a token, except inside an acronym run
      // ("POLine" -> {po, line}): an upper followed by a lower ends the run.
      const bool prev_upper =
          !cur.empty() && std::isupper(static_cast<unsigned char>(cur.back()));
      const bool next_lower =
          i + 1 < name.size() && std::islower(static_cast<unsigned char>(name[i + 1]));
      if (!cur.empty() && (!prev_upper || next_lower)) flush();
      cur.push_back(c);
      continue;
    }
    if (!cur.empty() && std::isdigit(static_cast<unsigned char>(cur.back()))) flush();
    cur.push_back(c);
  }
  flush();
  return tokens;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

}  // namespace uxm
