#include "common/status.h"

namespace uxm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace uxm
