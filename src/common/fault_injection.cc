#include "common/fault_injection.h"

#include <chrono>
#include <string>
#include <thread>

namespace uxm {
namespace {

// SplitMix64 finalizer: a cheap, well-mixed hash so consecutive hit
// numbers under one seed produce independent-looking decisions.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kKernelEval:
      return "kernel-eval";
    case FaultSite::kDriverDispatch:
      return "driver-dispatch";
    case FaultSite::kSnapshotSection:
      return "snapshot-section";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(FaultSite site, const FaultPlan& plan) {
  SiteState& s = sites_[static_cast<int>(site)];
  std::lock_guard<std::mutex> lock(s.mu);
  s.plan = plan;
  s.hits.store(0, std::memory_order_relaxed);
  s.fires.store(0, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(FaultSite site) {
  sites_[static_cast<int>(site)].armed.store(false,
                                             std::memory_order_release);
}

void FaultInjector::DisarmAll() {
  for (SiteState& s : sites_) {
    s.armed.store(false, std::memory_order_release);
  }
}

uint64_t FaultInjector::hits(FaultSite site) const {
  return sites_[static_cast<int>(site)].hits.load(std::memory_order_relaxed);
}

uint64_t FaultInjector::fires(FaultSite site) const {
  return sites_[static_cast<int>(site)].fires.load(std::memory_order_relaxed);
}

Status FaultInjector::Poke(FaultSite site) {
  SiteState& s = sites_[static_cast<int>(site)];
  if (!s.armed.load(std::memory_order_acquire)) return Status::OK();
  const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed);
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    plan = s.plan;
    if (plan.period > 1 && SplitMix64(plan.seed ^ hit) % plan.period != 0) {
      return Status::OK();
    }
    if (plan.max_fires > 0 &&
        s.fires.load(std::memory_order_relaxed) >= plan.max_fires) {
      return Status::OK();
    }
    s.fires.fetch_add(1, std::memory_order_relaxed);
  }
  if (plan.delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_micros));
  }
  if (plan.code == StatusCode::kOk) return Status::OK();
  return Status::WithCode(plan.code,
                          std::string("injected fault at ") +
                              FaultSiteName(site) + " (hit " +
                              std::to_string(hit) + ")");
}

}  // namespace uxm
