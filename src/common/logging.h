// Minimal leveled logging. Benchmarks and examples log at INFO; the library
// itself only logs at WARNING or above so it is quiet when embedded.
#ifndef UXM_COMMON_LOGGING_H_
#define UXM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace uxm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the global minimum level that is actually printed.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

/// Rate limiter for repetitive warnings: returns true the FIRST time a
/// given key is seen process-wide, false afterwards — so a warning about
/// one twig fires once per distinct twig, not once per evaluation (a
/// capped twig in a 10k-item batch must not flood stderr). The seen-set
/// is bounded: past `kLogOnceMaxKeys` distinct keys it resets
/// generationally, so an adversarial spray of unique keys cannot grow it
/// without limit (hot keys re-suppress after one extra line).
bool LogFirstSighting(const std::string& key);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// glog-style voidifier: `&` binds looser than `<<`, so the whole
/// streamed expression folds to void inside the ternary below.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace uxm

#define UXM_LOG(level)                                                   \
  (static_cast<int>(::uxm::LogLevel::k##level) <                          \
   static_cast<int>(::uxm::GetLogLevel()))                                \
      ? (void)0                                                           \
      : ::uxm::internal::LogMessageVoidify() &                            \
            ::uxm::internal::LogMessage(::uxm::LogLevel::k##level,        \
                                        __FILE__, __LINE__)               \
                .stream()

#define UXM_LOG_DEBUG(msg)                                               \
  do {                                                                   \
    if (static_cast<int>(::uxm::GetLogLevel()) <=                        \
        static_cast<int>(::uxm::LogLevel::kDebug)) {                     \
      ::uxm::internal::LogMessage(::uxm::LogLevel::kDebug, __FILE__,     \
                                  __LINE__)                              \
              .stream()                                                  \
          << msg;                                                        \
    }                                                                    \
  } while (0)

#define UXM_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::uxm::internal::LogMessage(::uxm::LogLevel::kFatal, __FILE__,     \
                                  __LINE__)                              \
              .stream()                                                  \
          << "Check failed: " #cond;                                     \
    }                                                                    \
  } while (0)

#define UXM_CHECK_MSG(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::uxm::internal::LogMessage(::uxm::LogLevel::kFatal, __FILE__,     \
                                  __LINE__)                              \
              .stream()                                                  \
          << "Check failed: " #cond << " — " << msg;                     \
    }                                                                    \
  } while (0)

#endif  // UXM_COMMON_LOGGING_H_
