#include "common/logging.h"

#include <atomic>
#include <mutex>
#include <unordered_set>

namespace uxm {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool LogFirstSighting(const std::string& key) {
  constexpr size_t kLogOnceMaxKeys = 4096;
  static std::mutex mu;
  static std::unordered_set<std::string>* seen =
      new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  if (seen->size() >= kLogOnceMaxKeys && seen->count(key) == 0) {
    seen->clear();  // generational reset; see header
  }
  return seen->insert(key).second;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace uxm
