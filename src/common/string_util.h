// String helpers used across the library: tokenization of schema element
// names (CamelCase / snake_case / UPPER_SNAKE), case folding, joining,
// trimming, and numeric formatting for benchmark tables.
#ifndef UXM_COMMON_STRING_UTIL_H_
#define UXM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace uxm {

/// Returns `s` lower-cased (ASCII only; schema names are ASCII).
std::string ToLower(std::string_view s);

/// Returns `s` upper-cased (ASCII only).
std::string ToUpper(std::string_view s);

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

/// Splits an element name into lower-cased word tokens.
///
/// Handles CamelCase ("BuyerPartID" -> {buyer, part, id}), snake_case,
/// UPPER_SNAKE ("CONTACT_NAME" -> {contact, name}), digits, and common
/// separators ('-', '.', ' ').
std::vector<std::string> TokenizeName(std::string_view name);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double with `digits` decimal places (for report tables).
std::string FormatDouble(double v, int digits);

}  // namespace uxm

#endif  // UXM_COMMON_STRING_UTIL_H_
