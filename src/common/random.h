// Deterministic pseudo-random generator used by all workload generators.
// A small xoshiro256** implementation so results do not depend on the
// standard library's unspecified distributions.
#ifndef UXM_COMMON_RANDOM_H_
#define UXM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace uxm {

/// \brief Seeded, reproducible RNG (xoshiro256**).
///
/// All sampling helpers are implemented on top of NextU64 with explicit
/// arithmetic so the same seed yields the same stream on every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed);

  /// Returns the next 64 uniform random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial with probability `p`.
  bool Bernoulli(double p);

  /// Gaussian via Box-Muller (mean, stddev).
  double Gaussian(double mean, double stddev);

  /// Zipf-distributed integer in [0, n) with exponent `s` (s>0).
  /// Used to skew vocabulary and repetition choices like real documents.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  size_t Index(size_t size) { return static_cast<size_t>(Uniform(size)); }

 private:
  uint64_t state_[4];
  bool have_gauss_ = false;
  double gauss_cache_ = 0.0;
};

}  // namespace uxm

#endif  // UXM_COMMON_RANDOM_H_
