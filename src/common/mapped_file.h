// Read-only memory-mapped file (RAII over open/fstat/mmap). The snapshot
// loader keeps one alive behind FlatPairIndex::storage so the flat
// evaluation arrays of every loaded pair point straight into the page
// cache — the map outlives every span cut from it, and no section is
// ever copied.
#ifndef UXM_COMMON_MAPPED_FILE_H_
#define UXM_COMMON_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace uxm {

/// \brief An immutable byte view of a whole file, unmapped on destruction.
class MappedFile {
 public:
  /// Maps `path` read-only. IOError on open/stat/mmap failure; an empty
  /// file maps successfully with size() == 0.
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace uxm

#endif  // UXM_COMMON_MAPPED_FILE_H_
