// Deterministic, seedable failpoints for robustness testing.
//
// Instrumented sites call UXM_INJECT_FAULT(FaultSite::k...) at their
// entry; when the site is armed with a FaultPlan whose deterministic
// decision fires for that hit, the macro returns the injected Status (or
// just sleeps, for delay-only plans) from the enclosing function. Firing
// is a pure function of (plan.seed, site hit number), so a sweep with a
// fixed seed injects the same SET of failures on every run — the ORDER
// hits are observed under concurrency is not deterministic, but which hit
// numbers fire is.
//
// The failpoints are compiled out of Release hot paths: the macro is a
// no-op unless UXM_FAULT_INJECTION is defined (CMake option of the same
// name; default ON for Debug builds and for the sanitizer CI jobs). The
// FaultInjector class itself always exists so its unit tests run in every
// configuration; only the in-tree call sites disappear. Tests that need
// the sites wired skip when !FaultInjector::CompiledIn().
//
// Everything is process-global (one injector, shared by every system in
// the process) — tests must DisarmAll() when done.
#ifndef UXM_COMMON_FAULT_INJECTION_H_
#define UXM_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace uxm {

/// Instrumented site classes. Each is a chokepoint every item of its kind
/// funnels through, so arming one covers a whole layer.
enum class FaultSite : int {
  /// Entry of the flat evaluation kernels (EvaluateBasicFlat /
  /// EvaluateTreeFlat) — every kernel evaluation.
  kKernelEval = 0,
  /// Entry of ExecutionDriver::Execute — every dispatched item, before
  /// the cache probe.
  kDriverDispatch,
  /// Per-section validation loop of LoadSnapshot — every snapshot
  /// section read.
  kSnapshotSection,
};
inline constexpr int kNumFaultSites = 3;

/// Returns a human-readable site name, e.g. "kernel-eval".
const char* FaultSiteName(FaultSite site);

/// \brief What an armed site does when its deterministic decision fires.
struct FaultPlan {
  /// Decision seed: hit number h fires iff SplitMix64(seed ^ h) % period
  /// == 0 (period <= 1 fires every hit).
  uint64_t seed = 1;
  uint64_t period = 1;
  /// Stop firing after this many fires; 0 = unlimited.
  uint64_t max_fires = 0;
  /// Status code injected on fire. kCancelled exercises the abort paths,
  /// kInternal the failure paths, kDataLoss the snapshot paths; kOk
  /// injects nothing (useful with delay_micros to stall without failing).
  StatusCode code = StatusCode::kInternal;
  /// Sleep this long on fire before returning — simulates a stuck
  /// evaluation or a slow read.
  uint32_t delay_micros = 0;
};

/// \brief The process-global registry of armed failpoints.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// True when UXM_INJECT_FAULT is compiled into the library (the CMake
  /// UXM_FAULT_INJECTION option). Site-wiring tests skip otherwise.
  static constexpr bool CompiledIn() {
#if defined(UXM_FAULT_INJECTION)
    return true;
#else
    return false;
#endif
  }

  /// Arms `site` with `plan`, resetting its hit/fire counters so the
  /// deterministic decision sequence starts from hit 0.
  void Arm(FaultSite site, const FaultPlan& plan);
  void Disarm(FaultSite site);
  void DisarmAll();

  /// Site traversals since the last Arm (counted while armed only — the
  /// disarmed fast path is a single relaxed load).
  uint64_t hits(FaultSite site) const;
  /// Fires since the last Arm.
  uint64_t fires(FaultSite site) const;

  /// The instrumented-code entry, via UXM_INJECT_FAULT. Returns the
  /// injected error when the site is armed and this hit fires; OK
  /// otherwise.
  Status Poke(FaultSite site);

 private:
  FaultInjector() = default;

  struct SiteState {
    std::atomic<bool> armed{false};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
    mutable std::mutex mu;  // guards plan
    FaultPlan plan;
  };

  SiteState sites_[kNumFaultSites];
};

}  // namespace uxm

#if defined(UXM_FAULT_INJECTION)
/// Failpoint: returns the injected error Status from the enclosing
/// function (implicitly converting into Result<T>) when this site is
/// armed and fires for this hit.
#define UXM_INJECT_FAULT(site)                                          \
  do {                                                                  \
    ::uxm::Status _uxm_injected_fault =                                 \
        ::uxm::FaultInjector::Instance().Poke(site);                    \
    if (!_uxm_injected_fault.ok()) return _uxm_injected_fault;          \
  } while (0)
#else
#define UXM_INJECT_FAULT(site) \
  do {                         \
  } while (0)
#endif

#endif  // UXM_COMMON_FAULT_INJECTION_H_
