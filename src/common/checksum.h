// FNV-1a 64-bit checksums for snapshot sections (src/snapshot/). FNV-1a
// is not cryptographic; it is an integrity check against torn writes,
// truncation, and bit rot — cheap enough to verify every section on every
// load, stable across platforms (byte-oriented, no alignment or
// endianness dependence).
#ifndef UXM_COMMON_CHECKSUM_H_
#define UXM_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace uxm {

inline constexpr uint64_t kFnv1a64Seed = 0xcbf29ce484222325ull;

/// FNV-1a over `len` bytes, continuing from `seed` (chain calls to
/// checksum discontiguous regions as one stream).
uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = kFnv1a64Seed);

}  // namespace uxm

#endif  // UXM_COMMON_CHECKSUM_H_
