#include "common/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace uxm {

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("open '" + path +
                           "' failed: " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("fstat '" + path +
                           "' failed: " + std::strerror(err));
  }
  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("mmap '" + path +
                             "' failed: " + std::strerror(err));
    }
    file.data_ = static_cast<const uint8_t*>(addr);
  }
  // The mapping holds its own reference to the inode; the descriptor is
  // no longer needed.
  ::close(fd);
  return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace uxm
