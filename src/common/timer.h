// Wall-clock stopwatch used by the benchmark harness and the corpus
// schedulers' elapsed_ns accounting.
#ifndef UXM_COMMON_TIMER_H_
#define UXM_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace uxm {

/// \brief Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Whole nanoseconds elapsed since construction or the last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace uxm

#endif  // UXM_COMMON_TIMER_H_
