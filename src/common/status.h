// Status and Result<T>: error handling without exceptions, in the style of
// Apache Arrow / RocksDB. Library entry points that can fail return Status
// (or Result<T> when they produce a value); hot inner loops use plain types.
#ifndef UXM_COMMON_STATUS_H_
#define UXM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace uxm {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kInternal,
  kNotImplemented,
  kCancelled,
  kIOError,
  kDataLoss,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. Use the factory functions
/// (Status::InvalidArgument(...) etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Constructs a status with an arbitrary non-OK code — for tooling that
  /// carries codes as data (the fault-injection harness). Prefer the named
  /// factories everywhere else.
  static Status WithCode(StatusCode code, std::string msg) {
    assert(code != StatusCode::kOk && "WithCode requires a non-OK code");
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result. Accessing the value of an errored Result is a
/// programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of this Result.
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace uxm

/// Propagates an error Status from a callee to the caller.
#define UXM_RETURN_NOT_OK(expr)          \
  do {                                   \
    ::uxm::Status _st = (expr);          \
    if (!_st.ok()) return _st;           \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define UXM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie()

#define UXM_ASSIGN_OR_RETURN(lhs, expr) \
  UXM_ASSIGN_OR_RETURN_IMPL(UXM_CONCAT_(_res_, __LINE__), lhs, expr)

#define UXM_CONCAT_INNER_(a, b) a##b
#define UXM_CONCAT_(a, b) UXM_CONCAT_INNER_(a, b)

#endif  // UXM_COMMON_STATUS_H_
