#include "common/arena.h"

namespace uxm {

MonotonicScratch::MonotonicScratch(size_t initial_bytes)
    : next_chunk_bytes_(initial_bytes > 0 ? initial_bytes : 1) {}

void* MonotonicScratch::Allocate(size_t bytes, size_t align) {
  for (;;) {
    if (chunk_idx_ < chunks_.size()) {
      Chunk& chunk = chunks_[chunk_idx_];
      const uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get());
      const uintptr_t aligned =
          (base + offset_ + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
      const size_t needed = (aligned - base) + bytes;
      if (needed <= chunk.size) {
        offset_ = needed;
        allocated_ += bytes;
        return reinterpret_cast<void*>(aligned);
      }
      // This chunk is exhausted (its tail is abandoned until Reset
      // coalesces); fall through to the next one.
      ++chunk_idx_;
      offset_ = 0;
      continue;
    }
    size_t want = next_chunk_bytes_;
    if (want < bytes + align) want = bytes + align;
    Chunk chunk;
    chunk.data = std::make_unique<unsigned char[]>(want);
    chunk.size = want;
    chunks_.push_back(std::move(chunk));
    next_chunk_bytes_ = want * 2;
    offset_ = 0;
  }
}

void MonotonicScratch::Reset() {
  if (chunks_.size() > 1) {
    // Growth spilled past the first chunk: the high-water mark exceeds any
    // single chunk, so replace them all with one chunk of the combined
    // capacity. The next cycle of the same workload fits in it entirely.
    size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    chunks_.clear();
    Chunk merged;
    merged.data = std::make_unique<unsigned char[]>(total);
    merged.size = total;
    chunks_.push_back(std::move(merged));
    next_chunk_bytes_ = total * 2;
  }
  chunk_idx_ = 0;
  offset_ = 0;
  allocated_ = 0;
}

size_t MonotonicScratch::capacity() const {
  size_t total = 0;
  for (const Chunk& chunk : chunks_) total += chunk.size;
  return total;
}

}  // namespace uxm
