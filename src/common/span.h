// A minimal read-only span: pointer + length over memory somebody else
// owns. The flat evaluation structures (FlatMappingTable, FlatBlockTree)
// hold their columns as ConstSpans so the SAME struct serves two owners:
// an in-process build views vectors in a FlatIndexStorage, and a loaded
// snapshot views 64-byte-aligned sections of a read-only mmap — the whole
// point of the snapshot format (src/snapshot/) being zero-copy. C++17 has
// no std::span; this subset (index, data, size, iteration) is all the
// kernel needs.
#ifndef UXM_COMMON_SPAN_H_
#define UXM_COMMON_SPAN_H_

#include <cstddef>
#include <vector>

namespace uxm {

/// \brief Non-owning read-only view of `size` contiguous Ts. Whoever
/// creates the span must keep the backing memory alive and unchanged for
/// the span's lifetime (FlatPairIndex carries the owner as a shared_ptr).
template <typename T>
class ConstSpan {
 public:
  ConstSpan() = default;
  ConstSpan(const T* data, size_t size) : data_(data), size_(size) {}
  /// Views a vector's contents (implicit, mirroring std::span).
  ConstSpan(const std::vector<T>& v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), size_(v.size()) {}

  const T& operator[](size_t i) const { return data_[i]; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace uxm

#endif  // UXM_COMMON_SPAN_H_
