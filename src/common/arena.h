// Monotonic scratch arena for the flat evaluation kernel (ROADMAP item 3).
//
// Evaluation scratch — candidate lists, satisfaction sets, per-mapping
// projected results — has a strict lifetime: it is dead the moment one
// driver request finishes. A bump allocator fits exactly: Allocate is a
// pointer increment, Reset reclaims everything at once, and after the
// first few requests have grown the arena to the workload's high-water
// mark the steady-state inner loop performs zero heap allocations.
//
// Ownership model: BatchQueryExecutor workers each lease one arena per
// Run slot (exec/batch_executor.cc); direct Query traffic falls back to a
// thread_local arena (query/flat_kernel.cc). An arena is single-threaded
// by construction — it is never shared between concurrently running
// evaluations.
#ifndef UXM_COMMON_ARENA_H_
#define UXM_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace uxm {

/// \brief Chunked bump allocator with whole-arena reclamation.
///
/// Memory comes out of geometrically growing chunks; Reset() makes every
/// byte reusable and coalesces a multi-chunk arena into one chunk of the
/// combined capacity, so an arena that has seen its peak workload never
/// touches malloc again.
class MonotonicScratch {
 public:
  static constexpr size_t kDefaultInitialBytes = size_t{1} << 16;

  explicit MonotonicScratch(size_t initial_bytes = kDefaultInitialBytes);

  MonotonicScratch(const MonotonicScratch&) = delete;
  MonotonicScratch& operator=(const MonotonicScratch&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Never
  /// null; zero-byte requests return a valid, unique-enough pointer.
  void* Allocate(size_t bytes, size_t align);

  /// Typed array allocation. T must be trivially destructible — Reset()
  /// runs no destructors. The returned array is uninitialized.
  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Reclaims every allocation at once. If growth spilled into multiple
  /// chunks, they are coalesced into a single chunk of the combined size,
  /// so the next cycle of the same workload allocates from one chunk and
  /// never calls malloc.
  void Reset();

  /// Total bytes owned across all chunks.
  size_t capacity() const;

  /// Number of chunks currently owned (1 in steady state).
  size_t chunk_count() const { return chunks_.size(); }

  /// Bytes handed out since the last Reset (excludes alignment padding).
  size_t allocated_bytes() const { return allocated_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  size_t chunk_idx_ = 0;       ///< Chunk currently being bumped.
  size_t offset_ = 0;          ///< Bump offset inside chunks_[chunk_idx_].
  size_t next_chunk_bytes_;    ///< Size of the next chunk to allocate.
  size_t allocated_ = 0;
};

/// \brief Arena-backed growable array of trivially copyable elements.
///
/// The growth strategy is the usual doubling, but stale copies are simply
/// abandoned to the arena (Reset reclaims them), so push_back never
/// frees. POD-shaped on purpose: arrays of ScratchVec can live in the
/// arena themselves — zero-initialized memory is a valid empty vector
/// with no arena bound; call Init() before the first push_back.
template <typename T>
class ScratchVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ScratchVec grows by memcpy");
  static_assert(std::is_trivially_destructible_v<T>,
                "arena memory is reclaimed without running destructors");

 public:
  ScratchVec() = default;
  explicit ScratchVec(MonotonicScratch* arena) : arena_(arena) {}

  void Init(MonotonicScratch* arena) {
    arena_ = arena;
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(const T& v) {
    if (size_ == capacity_) Grow(capacity_ > 0 ? capacity_ * 2 : 8);
    data_[size_++] = v;
  }

  void clear() { size_ = 0; }
  void resize_down(size_t n) { size_ = n; }  ///< n must be <= size().

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Grow(size_t n) {
    T* fresh = arena_->AllocateArray<T>(n);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = n;
  }

  MonotonicScratch* arena_ = nullptr;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace uxm

#endif  // UXM_COMMON_ARENA_H_
