#include "common/random.h"

#include <cassert>
#include <cmath>

namespace uxm {

namespace {
inline uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  have_gauss_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_cache_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_cache_ = r * std::sin(theta);
  have_gauss_ = true;
  return mean + stddev * r * std::cos(theta);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  // Inverse-CDF by rejection on the harmonic approximation; adequate for
  // workload generation (not a hot path).
  const double t = (std::pow(static_cast<double>(n), 1.0 - s) - s) / (1.0 - s);
  for (;;) {
    const double u = NextDouble() * t;
    const double x =
        (u <= 1.0) ? u : std::pow(u * (1.0 - s) + s, 1.0 / (1.0 - s));
    const uint64_t k = static_cast<uint64_t>(x);
    if (k >= n) continue;
    const double ratio = std::pow(static_cast<double>(k + 1), -s);
    const double bound = (k == 0) ? 1.0 : std::pow(static_cast<double>(k), -s);
    if (NextDouble() * bound <= ratio) return k;
  }
}

}  // namespace uxm
