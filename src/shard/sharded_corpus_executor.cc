#include "shard/sharded_corpus_executor.h"

#include <memory>
#include <optional>
#include <utility>

#include "common/timer.h"
#include "corpus/bounded_scheduler.h"
#include "corpus/run_budget.h"
#include "exec/thread_pool.h"

namespace uxm {

namespace {

/// Field-by-field sum of one shard's disposition counts into the global
/// report (every field of CorpusRunReport is additive).
void AccumulateCorpusReport(const CorpusRunReport& shard,
                            CorpusRunReport* total) {
  total->items_total += shard.items_total;
  total->items_evaluated += shard.items_evaluated;
  total->items_pruned += shard.items_pruned;
  total->items_aborted += shard.items_aborted;
  total->items_aborted_in_kernel += shard.items_aborted_in_kernel;
  total->items_failed += shard.items_failed;
  total->dispatches += shard.dispatches;
  total->items_deadline_skipped += shard.items_deadline_skipped;
  // Summed too: the aggregate is total scheduler-nanoseconds across
  // shards (see CorpusRunReport::elapsed_ns), keeping "shard reports sum
  // to the aggregate" true for every field.
  total->elapsed_ns += shard.elapsed_ns;
}

}  // namespace

Result<CorpusBatchResponse> ShardedCorpusExecutor::Run(
    const ShardedCorpusSnapshot& corpus, const std::vector<std::string>& twigs,
    const CorpusQueryOptions& options, const BatchCacheContext* cache) const {
  if (executor_ == nullptr) {
    return Status::Internal("sharded corpus executor has no batch executor");
  }
  const size_t num_shards = corpus.shards.size();
  const CorpusExecutor single(executor_, bound_cache_);
  if (num_shards <= 1 || !options.bounded || options.top_k <= 0) {
    return single.Run(*corpus.all, twigs, options, cache);
  }
  std::vector<const CorpusDocument*> selected;
  UXM_ASSIGN_OR_RETURN(selected,
                       ResolveCorpusSelection(*corpus.all, options.documents));
  if (selected.size() < 2) {
    return single.Run(*corpus.all, twigs, options, cache);
  }
  const size_t num_docs = selected.size();
  const size_t num_twigs = twigs.size();

  // Scatter: slice the (name-sorted) selection by the stable name hash.
  // Slices inherit the global order, so each shard's pool append order —
  // and with it every bound tie-break — is deterministic.
  std::vector<std::vector<uint32_t>> slices(num_shards);
  for (size_t d = 0; d < num_docs; ++d) {
    slices[ShardForDocument(selected[d]->name, num_shards)].push_back(
        static_cast<uint32_t>(d));
  }

  // One shared race per twig: every shard folds into the same tracker
  // and prunes/cancels against the same threshold.
  std::vector<std::unique_ptr<TwigRace>> races;
  races.reserve(num_twigs);
  for (size_t t = 0; t < num_twigs; ++t) {
    races.push_back(std::make_unique<TwigRace>(options.top_k, num_docs));
  }

  BoundedRunContext ctx;
  ctx.executor = executor_;
  ctx.bound_cache = bound_cache_;
  ctx.selected = &selected;
  ctx.twigs = &twigs;
  ctx.cache = cache;
  ctx.probe_bounds = options.probe_bounds;
  ctx.item_k = executor_->options().ptq.top_k;
  ctx.races = &races;
  // ONE budget for the whole scatter-gather: every shard scheduler (and
  // every driver/kernel poll under it) observes the same expiry, so the
  // merged result's certificate is global — no shard can keep burning
  // the deadline after another shard exhausted it.
  std::optional<RunBudget> budget;
  if (RunBudget::Limited(options.deadline, options.max_evaluations)) {
    budget.emplace(options.deadline, options.max_evaluations);
    ctx.budget = &*budget;
  }
  ctx.on_deadline = options.on_deadline;

  // Per-shard scheduler results and per-(twig, shard) gathered top-k
  // lists. Each driver writes only its own slots, so no locks.
  std::vector<BoundedScheduleResult> shard_results(num_shards);
  std::vector<std::vector<std::vector<CorpusAnswer>>> gathered(
      num_twigs, std::vector<std::vector<CorpusAnswer>>(num_shards));
  {
    ScopedThreads drivers;
    for (size_t s = 0; s < num_shards; ++s) {
      if (slices[s].empty()) continue;
      drivers.Spawn([&, s] {
        Timer shard_timer;
        const std::vector<uint32_t>& slice = slices[s];
        BoundedScheduleResult& result = shard_results[s];
        result.corpus.items_total =
            static_cast<int>(num_twigs * slice.size());
        std::vector<BoundedPoolItem> pool;
        pool.reserve(num_twigs * slice.size());
        BuildBoundedPool(ctx, slice, &pool, &result);
        RunBoundedWaves(ctx, std::move(pool), &result);
        result.corpus.elapsed_ns = shard_timer.ElapsedNanos();
        // Gather: this shard's per-twig top-k (what a remote shard
        // would ship back). Our own slots of collapsed/have are
        // quiescent — every wave of ours has joined — and no other
        // shard ever writes them.
        for (size_t t = 0; t < num_twigs; ++t) {
          TwigRace& race = *races[t];
          if (race.failed.load(std::memory_order_acquire)) continue;
          std::vector<std::vector<CorpusAnswer>> local;
          local.reserve(slice.size());
          for (const uint32_t d : slice) {
            if (race.have[d] && !race.collapsed[d].empty()) {
              local.push_back(race.collapsed[d]);
            }
          }
          gathered[t][s] = MergeTopK(local, options.top_k);
        }
      });
    }
  }

  // Aggregate: the global report is the field-by-field sum of the
  // per-shard reports, so the items_total invariant that holds per
  // scheduler holds in aggregate too.
  CorpusBatchResponse response;
  response.shard_reports.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (!slices[s].empty()) {
      AccumulateBatchReport(shard_results[s].report, &response.report);
    }
    AccumulateCorpusReport(shard_results[s].corpus, &response.corpus);
    response.shard_reports.push_back(shard_results[s].corpus);
  }
  FinalizeBoundedAnswers(ctx, options.top_k, &gathered, &response.answers);
  StampResponseExact(&response);
  return response;
}

}  // namespace uxm
