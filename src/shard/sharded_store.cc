#include "shard/sharded_store.h"

#include <algorithm>
#include <utility>

#include "common/checksum.h"
#include "exec/thread_pool.h"

namespace uxm {

int DefaultShardCount() {
  return std::min(ThreadPool::DefaultThreadCount(), 8);
}

size_t ShardForDocument(const std::string& name, size_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<size_t>(Fnv1a64(name.data(), name.size())) % num_shards;
}

ShardedDocumentStore::ShardedDocumentStore(int num_shards) {
  const int count = num_shards > 0 ? num_shards : DefaultShardCount();
  shards_.reserve(static_cast<size_t>(count));
  for (int s = 0; s < count; ++s) {
    shards_.push_back(std::make_unique<DocumentStore>());
  }
  Republish();
}

void ShardedDocumentStore::Republish() {
  auto next = std::make_shared<ShardedCorpusSnapshot>();
  next->shards.reserve(shards_.size());
  CorpusSnapshot all;
  for (const auto& shard : shards_) {
    std::shared_ptr<const CorpusSnapshot> view = shard->Snapshot();
    all.insert(all.end(), view->begin(), view->end());
    next->shards.push_back(std::move(view));
  }
  // Each shard view is already name-sorted; the merged view needs the
  // same global order the unsharded store publishes (subset resolution
  // bisects it, and merge tie-breaks ride on it).
  std::sort(all.begin(), all.end(),
            [](const CorpusDocument& a, const CorpusDocument& b) {
              return a.name < b.name;
            });
  next->all = std::make_shared<const CorpusSnapshot>(std::move(all));
  snapshot_ = std::move(next);
}

Status ShardedDocumentStore::Add(CorpusDocument entry) {
  std::lock_guard<std::mutex> lock(mu_);
  UXM_RETURN_NOT_OK(shards_[ShardOf(entry.name)]->Add(std::move(entry)));
  Republish();
  return Status::OK();
}

Status ShardedDocumentStore::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  UXM_RETURN_NOT_OK(shards_[ShardOf(name)]->Remove(name));
  Republish();
  return Status::OK();
}

int ShardedDocumentStore::RebindPair(
    const std::shared_ptr<const PreparedSchemaPair>& pair, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  int rebound = 0;
  for (const auto& shard : shards_) rebound += shard->RebindPair(pair, epoch);
  Republish();
  return rebound;
}

int ShardedDocumentStore::RemovePairDocuments(const Schema* source,
                                              const Schema* target) {
  std::lock_guard<std::mutex> lock(mu_);
  int dropped = 0;
  for (const auto& shard : shards_) {
    dropped += shard->RemovePairDocuments(source, target);
  }
  if (dropped > 0) Republish();
  return dropped;
}

void ShardedDocumentStore::Restamp(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) shard->Restamp(epoch);
  Republish();
}

void ShardedDocumentStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) shard->Clear();
  Republish();
}

std::shared_ptr<const ShardedCorpusSnapshot> ShardedDocumentStore::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

size_t ShardedDocumentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_->all->size();
}

std::vector<std::string> ShardedDocumentStore::Names() const {
  std::shared_ptr<const ShardedCorpusSnapshot> snapshot = Snapshot();
  std::vector<std::string> names;
  names.reserve(snapshot->all->size());
  for (const CorpusDocument& entry : *snapshot->all) {
    names.push_back(entry.name);
  }
  return names;
}

}  // namespace uxm
