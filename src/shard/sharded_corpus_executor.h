// Scatter-gather corpus execution over a sharded corpus (ROADMAP item
// 2): one bounded TA scheduler per shard, racing concurrently against
// SHARED per-twig thresholds, k-way-merged by the coordinator.
//
// The protocol, in terms of the shared engine (corpus/bounded_scheduler.h):
//
//   scatter — the coordinator resolves the document selection against
//     the merged view, partitions it into the S per-shard slices (by the
//     same stable name hash the store routes with), allocates ONE
//     TwigRace per twig, and spawns one driver thread per non-empty
//     shard. Each driver runs the full bound phase + wave loop over its
//     slice — so the per-document bound probes, the dominant fixed cost
//     on a corpus the thresholds prune well, parallelize across shards
//     instead of serializing in one scheduler.
//
//   global threshold — the races are shared: an answer found by any
//     shard raises its twig's k-th-best threshold for every shard, so a
//     shard whose best remaining bound has fallen below the global k-th
//     prunes its whole remainder without dispatching it ("returns
//     immediately"), and in-flight items of other shards abort at the
//     driver checks or inside the kernel (the PR 8 KernelCancelContext
//     plumbing, fed through BatchQueryItem::cancel_threshold).
//
//   gather — each driver ends by merging its own slice's answers into a
//     per-twig shard-local top-k (what a network shard would ship); the
//     coordinator k-way-merges the S lists per twig with the same
//     AnswerBefore tie-breaks as the single scheduler. Exact by the
//     scatter-gather property: any answer in the global top-k is in the
//     top-k of the one shard holding its document.
//
// Exactness: bit-identical to the single-scheduler path — pruning only
// ever drops items k in-hand answers provably beat (the threshold is a
// monotone max that starts below every bound), merging is
// schedule-independent by AnswerBefore's total order, and debug builds
// re-evaluate every skipped document and certify the merge
// (CertifyBoundedTopK, same discipline as the unsharded path). Pinned by
// the tests/sharded_differential_test.cc sweep.
//
// Threading: all shards dispatch their waves into the ONE shared
// BatchQueryExecutor pool (see README "Sharded corpus serving" for the
// shared-pool-vs-per-shard-pools justification); driver threads are
// dedicated ScopedThreads, never pool tasks (exec/thread_pool.h explains
// the deadlock that forbids it). Reports: each shard's
// BoundedScheduleResult is surfaced verbatim as
// CorpusBatchResponse::shard_reports[s] and the global CorpusRunReport
// is their field-by-field sum, so the per-scheduler invariant
// items_total == evaluated + pruned + aborted + failed holds per shard
// AND in aggregate.
#ifndef UXM_SHARD_SHARDED_CORPUS_EXECUTOR_H_
#define UXM_SHARD_SHARDED_CORPUS_EXECUTOR_H_

#include <string>
#include <vector>

#include "cache/bound_cache.h"
#include "common/status.h"
#include "corpus/corpus_executor.h"
#include "exec/batch_executor.h"
#include "shard/sharded_store.h"

namespace uxm {

/// \brief Coordinator running one bounded scheduler per corpus shard.
///
/// Borrows the executor and bound cache exactly like CorpusExecutor (the
/// facade hands in the same shared pool and registry-wide BoundCache).
class ShardedCorpusExecutor {
 public:
  explicit ShardedCorpusExecutor(const BatchQueryExecutor* executor,
                                 BoundCache* bound_cache = nullptr)
      : executor_(executor), bound_cache_(bound_cache) {}

  /// Evaluates the twig batch over the sharded corpus. Delegates to the
  /// single-scheduler CorpusExecutor — which IS the S=1 arm of the
  /// differential sweep — whenever scatter-gather cannot win: one shard,
  /// an unbounded or top_k <= 0 run (nothing to prune against), or a
  /// selection of fewer than two documents. Semantics (subset
  /// resolution, failure attribution, caching, report invariant) match
  /// CorpusExecutor::Run; answers are bit-identical to it by
  /// construction.
  Result<CorpusBatchResponse> Run(const ShardedCorpusSnapshot& corpus,
                                  const std::vector<std::string>& twigs,
                                  const CorpusQueryOptions& options,
                                  const BatchCacheContext* cache) const;

 private:
  const BatchQueryExecutor* executor_;
  BoundCache* bound_cache_;
};

}  // namespace uxm

#endif  // UXM_SHARD_SHARDED_CORPUS_EXECUTOR_H_
