// Sharded corpus registry — the partitioning half of in-process sharded
// corpus serving (ROADMAP item 2).
//
// A shard IS a DocumentStore: the ShardedDocumentStore routes every
// registration to one of S inner stores by a stable hash of the document
// NAME (never of registration order, corpus size, or pointer identity),
// so the same corpus always partitions the same way — across runs,
// across processes, and across snapshot save/load. That stability is
// what makes per-shard snapshot export a replica-bootstrap path: a
// replica that loads shard s's snapshot holds exactly the documents any
// coordinator would route to shard s.
//
// Every mutation republishes one immutable ShardedCorpusSnapshot: the
// merged name-sorted view (what subset resolution, answer merging, and
// SaveSnapshot run against — identical to the unsharded CorpusSnapshot)
// plus the S per-shard name-sorted views the per-shard schedulers fan
// out over. Both views share the same CorpusDocument entries, so a
// snapshot costs S+1 vectors of shared_ptr-sized records, not document
// copies, and readers grab one shared_ptr and never block a mutation
// (the same discipline as DocumentStore).
#ifndef UXM_SHARD_SHARDED_STORE_H_
#define UXM_SHARD_SHARDED_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "corpus/document_store.h"

namespace uxm {

/// Default shard count: min(hardware threads, 8), floor 1. Eight is
/// where the scatter-gather win flattens for in-process serving — more
/// shards mean more driver threads contending for the one evaluation
/// pool without adding bound-phase parallelism.
int DefaultShardCount();

/// Stable shard assignment: FNV-1a-64 of the document name modulo
/// `num_shards` (clamped to >= 1). Pure function of the name; exposed so
/// tests can pin placements and tools/uxm_snapshot can summarize a
/// snapshot's shard layout without loading it into a store.
size_t ShardForDocument(const std::string& name, size_t num_shards);

/// \brief One consistent instant of a sharded corpus.
///
/// Invariant: `shards` partition `*all` — disjoint, union-equal, every
/// document in shard ShardForDocument(name, shards.size()) — and each
/// view is name-sorted. Pinned by tests/shard_test.cc.
struct ShardedCorpusSnapshot {
  std::shared_ptr<const CorpusSnapshot> all;
  std::vector<std::shared_ptr<const CorpusSnapshot>> shards;
};

/// \brief Thread-safe registry of named annotated documents, partitioned
/// into S DocumentStores by name hash.
///
/// API mirrors DocumentStore (the facade swaps one for the other); the
/// pair-wide operations fan out over every shard. Internally
/// synchronized, but the facade additionally serializes mutations with
/// its state lock so epoch assignment stays atomic with Prepare.
class ShardedDocumentStore {
 public:
  /// `num_shards` <= 0 selects DefaultShardCount(). The count is fixed
  /// for the store's lifetime (re-sharding a live corpus is a
  /// rebuild-and-reload operation, not a mutation).
  explicit ShardedDocumentStore(int num_shards = 0);

  ShardedDocumentStore(const ShardedDocumentStore&) = delete;
  ShardedDocumentStore& operator=(const ShardedDocumentStore&) = delete;

  size_t num_shards() const { return shards_.size(); }

  /// The shard `name` is (or would be) stored in.
  size_t ShardOf(const std::string& name) const {
    return ShardForDocument(name, shards_.size());
  }

  /// Registers `entry` in its name's shard. AlreadyExists if the name is
  /// taken (names are globally unique: one name always maps to one
  /// shard); InvalidArgument per DocumentStore::Add.
  Status Add(CorpusDocument entry);

  /// Unregisters `name` from its shard. NotFound if absent.
  Status Remove(const std::string& name);

  /// Re-binds every entry of `pair`'s (source, target) key to the new
  /// incarnation across all shards (see DocumentStore::RebindPair).
  /// Returns the number of entries re-bound.
  int RebindPair(const std::shared_ptr<const PreparedSchemaPair>& pair,
                 uint64_t epoch);

  /// Drops every entry registered under the pair for (source, target)
  /// across all shards. Returns the number of entries dropped.
  int RemovePairDocuments(const Schema* source, const Schema* target);

  /// Re-stamps every entry of every shard with `epoch`.
  void Restamp(uint64_t epoch);

  /// Drops every entry of every shard.
  void Clear();

  /// The current corpus view. Never null; `all` and all S `shards`
  /// entries are non-null (empty vectors when nothing is registered).
  std::shared_ptr<const ShardedCorpusSnapshot> Snapshot() const;

  /// Registered document count / names (sorted), over all shards.
  size_t size() const;
  std::vector<std::string> Names() const;

 private:
  /// Rebuilds the published snapshot from the shard stores. Caller holds
  /// mu_ (so the S per-shard captures form one consistent instant).
  void Republish();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<DocumentStore>> shards_;
  std::shared_ptr<const ShardedCorpusSnapshot> snapshot_;
};

}  // namespace uxm

#endif  // UXM_SHARD_SHARDED_STORE_H_
