#include "matching/matching.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace uxm {

Status SchemaMatching::Add(SchemaNodeId source, SchemaNodeId target,
                           double score) {
  if (source_ == nullptr || target_ == nullptr) {
    return Status::Internal("SchemaMatching has no schemas attached");
  }
  if (source < 0 || source >= source_->size()) {
    return Status::InvalidArgument("source id out of range");
  }
  if (target < 0 || target >= target_->size()) {
    return Status::InvalidArgument("target id out of range");
  }
  if (score <= 0.0 || score > 1.0) {
    return Status::InvalidArgument("score must be in (0, 1]");
  }
  for (const Correspondence& c : corrs_) {
    if (c.source == source && c.target == target) {
      return Status::AlreadyExists("duplicate correspondence");
    }
  }
  corrs_.push_back(Correspondence{source, target, score});
  return Status::OK();
}

std::vector<Correspondence> SchemaMatching::ForTarget(
    SchemaNodeId target) const {
  std::vector<Correspondence> out;
  for (const Correspondence& c : corrs_) {
    if (c.target == target) out.push_back(c);
  }
  return out;
}

std::vector<Correspondence> SchemaMatching::ForSource(
    SchemaNodeId source) const {
  std::vector<Correspondence> out;
  for (const Correspondence& c : corrs_) {
    if (c.source == source) out.push_back(c);
  }
  return out;
}

std::vector<SchemaNodeId> SchemaMatching::MatchedSources() const {
  std::set<SchemaNodeId> s;
  for (const Correspondence& c : corrs_) s.insert(c.source);
  return std::vector<SchemaNodeId>(s.begin(), s.end());
}

std::vector<SchemaNodeId> SchemaMatching::MatchedTargets() const {
  std::set<SchemaNodeId> s;
  for (const Correspondence& c : corrs_) s.insert(c.target);
  return std::vector<SchemaNodeId>(s.begin(), s.end());
}

std::string SchemaMatching::ToString() const {
  std::vector<Correspondence> sorted = corrs_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Correspondence& a, const Correspondence& b) {
              return a.score > b.score;
            });
  std::string out;
  for (const Correspondence& c : sorted) {
    out += source_->path(c.source);
    out += " ~ ";
    out += target_->path(c.target);
    out += " (";
    out += FormatDouble(c.score, 2);
    out += ")\n";
  }
  return out;
}

}  // namespace uxm
