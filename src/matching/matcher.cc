#include "matching/matcher.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace uxm {

namespace {

/// Appends canonicalized tokens of `name` to `out`.
void AppendTokens(std::string_view name, const Thesaurus& thesaurus,
                  std::vector<std::string>* out) {
  for (const std::string& tok : TokenizeName(name)) {
    out->push_back(thesaurus.Canonical(tok));
  }
}

}  // namespace

std::vector<ComposedMatcher::Features> ComposedMatcher::ComputeFeatures(
    const Schema& schema) const {
  std::vector<Features> feats(static_cast<size_t>(schema.size()));
  for (const SchemaNode& node : schema.nodes()) {
    Features& f = feats[static_cast<size_t>(node.id)];
    f.lower_name = ToLower(node.name);
    AppendTokens(node.name, thesaurus_, &f.name_tokens);
    for (SchemaNodeId c : node.children) {
      AppendTokens(schema.name(c), thesaurus_, &f.child_tokens);
    }
  }
  // Path tokens: parent's path tokens + own name tokens (root downward).
  for (const SchemaNode& node : schema.nodes()) {  // ids are topological
    Features& f = feats[static_cast<size_t>(node.id)];
    if (node.parent != kInvalidSchemaNode) {
      const Features& pf = feats[static_cast<size_t>(node.parent)];
      f.path_tokens = pf.path_tokens;
    }
    for (const std::string& tok : f.name_tokens) f.path_tokens.push_back(tok);
  }
  // Leaf tokens: bottom-up accumulation in post-order.
  for (SchemaNodeId id : schema.post_order()) {
    const SchemaNode& node = schema.node(id);
    Features& f = feats[static_cast<size_t>(id)];
    if (node.children.empty()) {
      f.leaf_tokens = f.name_tokens;
    } else {
      for (SchemaNodeId c : node.children) {
        const Features& cf = feats[static_cast<size_t>(c)];
        f.leaf_tokens.insert(f.leaf_tokens.end(), cf.leaf_tokens.begin(),
                             cf.leaf_tokens.end());
      }
      // Bound feature size on big schemas; a sample of leaf names is enough
      // for a similarity signal.
      constexpr size_t kMaxLeafTokens = 48;
      if (f.leaf_tokens.size() > kMaxLeafTokens) {
        f.leaf_tokens.resize(kMaxLeafTokens);
      }
    }
  }
  return feats;
}

double ComposedMatcher::PairScore(const Schema& s, const Features& fs,
                                  SchemaNodeId sid, const Schema& t,
                                  const Features& ft, SchemaNodeId tid) const {
  const double name =
      0.6 * TokenSetSimilarity(fs.name_tokens, ft.name_tokens, thesaurus_) +
      0.25 * TrigramSimilarity(fs.lower_name, ft.lower_name) +
      0.15 * LevenshteinSimilarity(fs.lower_name, ft.lower_name);

  double structure = 0.0;
  if (options_.strategy == MatcherStrategy::kContext) {
    // Context = root path agreement + descendant-content agreement + a
    // mild relative-depth bonus.
    const double path =
        TokenSetSimilarity(fs.path_tokens, ft.path_tokens, thesaurus_);
    const double leaves =
        TokenSetSimilarity(fs.leaf_tokens, ft.leaf_tokens, thesaurus_);
    const double ds = static_cast<double>(s.node(sid).depth) /
                      std::max(1, s.Height());
    const double dt = static_cast<double>(t.node(tid).depth) /
                      std::max(1, t.Height());
    structure = 0.5 * path + 0.35 * leaves +
                0.15 * (1.0 - std::fabs(ds - dt));
  } else {
    const bool s_leaf = s.node(sid).children.empty();
    const bool t_leaf = t.node(tid).children.empty();
    if (s_leaf != t_leaf) {
      structure = 0.25;  // leaf vs internal: weak structural agreement
    } else if (s_leaf) {
      // Two leaves: fragment similarity is parent-context similarity.
      const SchemaNodeId sp = s.node(sid).parent;
      const SchemaNodeId tp = t.node(tid).parent;
      if (sp != kInvalidSchemaNode && tp != kInvalidSchemaNode) {
        structure = NameSimilarity(s.name(sp), t.name(tp), thesaurus_);
      } else {
        structure = 0.5;
      }
    } else {
      structure =
          0.5 * TokenSetSimilarity(fs.child_tokens, ft.child_tokens,
                                   thesaurus_) +
          0.5 * TokenSetSimilarity(fs.leaf_tokens, ft.leaf_tokens, thesaurus_);
    }
  }
  return options_.name_weight * name + (1.0 - options_.name_weight) * structure;
}

Result<SchemaMatching> ComposedMatcher::Match(const Schema& source,
                                              const Schema& target) const {
  if (!source.finalized() || !target.finalized()) {
    return Status::InvalidArgument("schemas must be finalized before Match");
  }
  if (options_.name_weight < 0.0 || options_.name_weight > 1.0) {
    return Status::InvalidArgument("name_weight must be in [0, 1]");
  }
  const std::vector<Features> fs = ComputeFeatures(source);
  const std::vector<Features> ft = ComputeFeatures(target);

  const int ns = source.size();
  const int nt = target.size();
  std::vector<double> best_for_source(static_cast<size_t>(ns), 0.0);
  std::vector<double> best_for_target(static_cast<size_t>(nt), 0.0);

  struct Cand {
    SchemaNodeId s;
    SchemaNodeId t;
    double score;
  };
  std::vector<Cand> cands;
  for (SchemaNodeId si = 0; si < ns; ++si) {
    for (SchemaNodeId ti = 0; ti < nt; ++ti) {
      const double score = PairScore(source, fs[static_cast<size_t>(si)], si,
                                     target, ft[static_cast<size_t>(ti)], ti);
      if (score < options_.threshold) continue;
      cands.push_back({si, ti, score});
      best_for_source[static_cast<size_t>(si)] =
          std::max(best_for_source[static_cast<size_t>(si)], score);
      best_for_target[static_cast<size_t>(ti)] =
          std::max(best_for_target[static_cast<size_t>(ti)], score);
    }
  }

  // Relative dominance filter, then per-target cap by descending score.
  std::vector<Cand> kept;
  for (const Cand& c : cands) {
    const double bar =
        options_.relative_factor *
        std::min(best_for_source[static_cast<size_t>(c.s)],
                 best_for_target[static_cast<size_t>(c.t)]);
    if (c.score >= bar) kept.push_back(c);
  }
  std::sort(kept.begin(), kept.end(), [](const Cand& a, const Cand& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.t != b.t) return a.t < b.t;
    return a.s < b.s;
  });

  SchemaMatching matching(&source, &target);
  std::vector<int> per_target(static_cast<size_t>(nt), 0);
  std::vector<int> per_source(static_cast<size_t>(ns), 0);
  for (const Cand& c : kept) {
    if (options_.max_per_target > 0 &&
        per_target[static_cast<size_t>(c.t)] >= options_.max_per_target) {
      continue;
    }
    if (options_.max_per_source > 0 &&
        per_source[static_cast<size_t>(c.s)] >= options_.max_per_source) {
      continue;
    }
    const double clamped = std::min(1.0, c.score);
    UXM_RETURN_NOT_OK(matching.Add(c.s, c.t, clamped));
    ++per_target[static_cast<size_t>(c.t)];
    ++per_source[static_cast<size_t>(c.s)];
  }
  return matching;
}

}  // namespace uxm
