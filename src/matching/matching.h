// Core schema-matching types: Correspondence and SchemaMatching (the paper's
// U). A matching is a set of scored edges between elements of a source
// schema S and a target schema T.
#ifndef UXM_MATCHING_MATCHING_H_
#define UXM_MATCHING_MATCHING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/schema.h"

namespace uxm {

/// \brief A scored edge (x, y) between a source and a target element.
struct Correspondence {
  SchemaNodeId source = kInvalidSchemaNode;  ///< Element of S.
  SchemaNodeId target = kInvalidSchemaNode;  ///< Element of T.
  double score = 0.0;                        ///< Similarity in (0, 1].

  bool operator==(const Correspondence& o) const {
    return source == o.source && target == o.target;
  }
};

/// \brief A schema matching U between S and T (Table I).
///
/// Holds non-owning pointers to the two schemas, which must outlive the
/// matching; all downstream structures (mappings, block trees) reference
/// elements by their dense ids in these schemas.
class SchemaMatching {
 public:
  SchemaMatching() = default;
  SchemaMatching(const Schema* source, const Schema* target)
      : source_(source), target_(target) {}

  const Schema& source() const { return *source_; }
  const Schema& target() const { return *target_; }
  const Schema* source_ptr() const { return source_; }
  const Schema* target_ptr() const { return target_; }

  /// Adds a correspondence. Returns InvalidArgument on out-of-range ids,
  /// non-positive score, or duplicate (source,target) pair.
  Status Add(SchemaNodeId source, SchemaNodeId target, double score);

  const std::vector<Correspondence>& correspondences() const { return corrs_; }

  /// Capacity of the matching (paper Table II, "Cap."): number of edges.
  int size() const { return static_cast<int>(corrs_.size()); }
  bool empty() const { return corrs_.empty(); }

  /// All correspondences incident to a given target element.
  std::vector<Correspondence> ForTarget(SchemaNodeId target) const;

  /// All correspondences incident to a given source element.
  std::vector<Correspondence> ForSource(SchemaNodeId source) const;

  /// Distinct source (resp. target) elements that appear in some edge.
  std::vector<SchemaNodeId> MatchedSources() const;
  std::vector<SchemaNodeId> MatchedTargets() const;

  /// Renders edges as "SourcePath ~ TargetPath (score)" lines.
  std::string ToString() const;

 private:
  const Schema* source_ = nullptr;
  const Schema* target_ = nullptr;
  std::vector<Correspondence> corrs_;
};

}  // namespace uxm

#endif  // UXM_MATCHING_MATCHING_H_
