// Composite schema matcher standing in for COMA++. Combines linguistic
// (name/token/thesaurus) similarity with one of two structural strategies,
// mirroring the matcher options recorded in Table II:
//  - kContext  ("c"): blend in root-to-node *path* similarity, so elements
//    in similar positions score higher;
//  - kFragment ("f"): blend in local *fragment* similarity (children and
//    descendant-leaf name sets), so elements with similar subtrees score
//    higher.
// Candidate selection uses an absolute threshold plus a relative dominance
// criterion, which keeps the matching sparse, as real COMA++ output is.
#ifndef UXM_MATCHING_MATCHER_H_
#define UXM_MATCHING_MATCHER_H_

#include <vector>

#include "matching/matching.h"
#include "matching/similarity.h"
#include "xml/schema.h"

namespace uxm {

/// Structural strategy, the "opt" column of Table II.
enum class MatcherStrategy {
  kContext,   ///< Path-aware ("c").
  kFragment,  ///< Subtree-aware ("f").
};

/// \brief Tuning knobs for the composite matcher.
struct MatcherOptions {
  MatcherStrategy strategy = MatcherStrategy::kContext;
  /// Weight of the linguistic component; (1 - weight) goes to structure.
  double name_weight = 0.62;
  /// Minimum combined score for a pair to be reported at all.
  double threshold = 0.55;
  /// A pair is kept only if its score is at least `relative_factor` times
  /// the best score seen for *either* endpoint. Controls sparsity.
  double relative_factor = 0.90;
  /// Cap on correspondences per target element (0 = unlimited).
  int max_per_target = 4;
  /// Cap on correspondences per source element (0 = unlimited); keeps the
  /// matching sparse in both directions, as COMA++ output is.
  int max_per_source = 4;
};

/// \brief Composite matcher producing a SchemaMatching from two schemas.
///
/// Deterministic: same schemas + options => same matching. The thesaurus
/// is injected so domains other than e-commerce can supply their own.
class ComposedMatcher {
 public:
  explicit ComposedMatcher(MatcherOptions options = {},
                           Thesaurus thesaurus = Thesaurus::CommerceDefault())
      : options_(options), thesaurus_(std::move(thesaurus)) {}

  /// Runs the match. `source` and `target` must be finalized and must
  /// outlive the returned matching.
  Result<SchemaMatching> Match(const Schema& source,
                               const Schema& target) const;

  const MatcherOptions& options() const { return options_; }

 private:
  /// Precomputed per-element features.
  struct Features {
    std::vector<std::string> name_tokens;       ///< canonicalized
    std::vector<std::string> path_tokens;       ///< canonicalized, whole path
    std::vector<std::string> child_tokens;      ///< children names
    std::vector<std::string> leaf_tokens;       ///< descendant leaf names
    std::string lower_name;
  };

  std::vector<Features> ComputeFeatures(const Schema& schema) const;

  double PairScore(const Schema& s, const Features& fs, SchemaNodeId sid,
                   const Schema& t, const Features& ft,
                   SchemaNodeId tid) const;

  MatcherOptions options_;
  Thesaurus thesaurus_;
};

}  // namespace uxm

#endif  // UXM_MATCHING_MATCHER_H_
