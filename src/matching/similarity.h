// String and token-set similarity measures used by the composite matcher:
// normalized Levenshtein, character trigram Dice coefficient, token-set
// Jaccard with synonym expansion. All return values in [0, 1].
#ifndef UXM_MATCHING_SIMILARITY_H_
#define UXM_MATCHING_SIMILARITY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace uxm {

/// Levenshtein edit distance between two strings.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - dist/max(|a|,|b|); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over character trigrams of the lower-cased inputs.
/// Strings shorter than 3 characters fall back to exact-match/containment.
double TrigramSimilarity(std::string_view a, std::string_view b);

/// \brief Domain synonym table (the matcher's auxiliary information source,
/// standing in for COMA++'s name thesaurus).
class Thesaurus {
 public:
  Thesaurus() = default;

  /// Declares that all words in `group` are mutual synonyms.
  void AddSynonymGroup(const std::vector<std::string>& group);

  /// True if `a` and `b` are equal or declared synonyms (case-insensitive).
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// Canonical representative of a word's synonym group (the word itself
  /// if it has no group).
  std::string Canonical(std::string_view word) const;

  /// Builds the purchase-order/e-commerce thesaurus used by the standard
  /// workload (buyer/purchaser, supplier/seller/vendor, ...).
  static Thesaurus CommerceDefault();

 private:
  // word -> group id; groups are disjoint.
  std::unordered_map<std::string, int> group_of_;
  std::vector<std::string> representative_;
};

/// Jaccard similarity of two token multisets after canonicalizing each
/// token through the thesaurus.
double TokenSetSimilarity(const std::vector<std::string>& a,
                          const std::vector<std::string>& b,
                          const Thesaurus& thesaurus);

/// Composite name similarity of two element names: tokenizes both, then
/// combines token-set similarity (weight 0.55), trigram similarity (0.25)
/// and Levenshtein similarity (0.20) of the lower-cased raw names.
double NameSimilarity(std::string_view a, std::string_view b,
                      const Thesaurus& thesaurus);

}  // namespace uxm

#endif  // UXM_MATCHING_SIMILARITY_H_
