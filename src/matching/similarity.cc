#include "matching/similarity.h"

#include <algorithm>

#include "common/string_util.h"

namespace uxm {

int LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1);
  std::vector<int> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  const int dist = LevenshteinDistance(a, b);
  const double denom = static_cast<double>(std::max(a.size(), b.size()));
  return 1.0 - static_cast<double>(dist) / denom;
}

double TrigramSimilarity(std::string_view a_raw, std::string_view b_raw) {
  const std::string a = ToLower(a_raw);
  const std::string b = ToLower(b_raw);
  if (a.size() < 3 || b.size() < 3) {
    if (a == b) return 1.0;
    if (!a.empty() && !b.empty() &&
        (a.find(b) != std::string::npos || b.find(a) != std::string::npos)) {
      return 0.5;
    }
    return 0.0;
  }
  auto trigrams = [](const std::string& s) {
    std::unordered_set<std::string> grams;
    for (size_t i = 0; i + 3 <= s.size(); ++i) grams.insert(s.substr(i, 3));
    return grams;
  };
  const auto ga = trigrams(a);
  const auto gb = trigrams(b);
  size_t common = 0;
  for (const auto& g : ga) {
    if (gb.count(g)) ++common;
  }
  return 2.0 * static_cast<double>(common) /
         static_cast<double>(ga.size() + gb.size());
}

void Thesaurus::AddSynonymGroup(const std::vector<std::string>& group) {
  if (group.empty()) return;
  // If any member already has a group, merge into that group id; otherwise
  // allocate a fresh one. (Groups in practice are declared disjoint.)
  int gid = -1;
  for (const std::string& w : group) {
    auto it = group_of_.find(ToLower(w));
    if (it != group_of_.end()) {
      gid = it->second;
      break;
    }
  }
  if (gid < 0) {
    gid = static_cast<int>(representative_.size());
    representative_.push_back(ToLower(group.front()));
  }
  for (const std::string& w : group) group_of_[ToLower(w)] = gid;
}

bool Thesaurus::AreSynonyms(std::string_view a, std::string_view b) const {
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  if (la == lb) return true;
  auto ia = group_of_.find(la);
  auto ib = group_of_.find(lb);
  return ia != group_of_.end() && ib != group_of_.end() &&
         ia->second == ib->second;
}

std::string Thesaurus::Canonical(std::string_view word) const {
  const std::string lw = ToLower(word);
  auto it = group_of_.find(lw);
  if (it == group_of_.end()) return lw;
  return representative_[static_cast<size_t>(it->second)];
}

Thesaurus Thesaurus::CommerceDefault() {
  Thesaurus t;
  t.AddSynonymGroup({"buyer", "purchaser", "customer"});
  t.AddSynonymGroup({"supplier", "seller", "vendor"});
  t.AddSynonymGroup({"order", "po", "purchaseorder"});
  t.AddSynonymGroup({"item", "line", "article", "position", "detail"});
  t.AddSynonymGroup({"price", "pricing", "amount", "cost"});
  t.AddSynonymGroup({"quantity", "qty", "count"});
  t.AddSynonymGroup({"id", "identifier", "number", "no", "num", "code"});
  t.AddSynonymGroup({"name", "label", "title"});
  t.AddSynonymGroup({"address", "addr", "location"});
  t.AddSynonymGroup({"phone", "telephone", "tel"});
  t.AddSynonymGroup({"email", "mail", "emailaddress"});
  t.AddSynonymGroup({"zip", "postal", "postcode", "zipcode"});
  t.AddSynonymGroup({"country", "nation"});
  t.AddSynonymGroup({"city", "town"});
  t.AddSynonymGroup({"street", "road"});
  t.AddSynonymGroup({"contact", "person"});
  t.AddSynonymGroup({"date", "time", "datetime"});
  t.AddSynonymGroup({"delivery", "deliver", "shipping", "ship", "shipment",
                     "shipto", "receiving", "dispatch"});
  t.AddSynonymGroup({"invoice", "bill", "billing"});
  t.AddSynonymGroup({"party", "partner", "organization", "org", "company"});
  t.AddSynonymGroup({"currency", "curr"});
  t.AddSynonymGroup({"tax", "vat", "duty"});
  t.AddSynonymGroup({"total", "sum", "subtotal"});
  t.AddSynonymGroup({"description", "desc", "remark", "note", "comment"});
  t.AddSynonymGroup({"unit", "uom", "measure"});
  t.AddSynonymGroup({"reference", "ref"});
  t.AddSynonymGroup({"header", "head"});
  t.AddSynonymGroup({"body", "content"});
  t.AddSynonymGroup({"fax", "facsimile"});
  t.AddSynonymGroup({"region", "state", "province"});
  return t;
}

double TokenSetSimilarity(const std::vector<std::string>& a,
                          const std::vector<std::string>& b,
                          const Thesaurus& thesaurus) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_set<std::string> ca;
  std::unordered_set<std::string> cb;
  for (const auto& w : a) ca.insert(thesaurus.Canonical(w));
  for (const auto& w : b) cb.insert(thesaurus.Canonical(w));
  size_t common = 0;
  for (const auto& w : ca) {
    if (cb.count(w)) ++common;
  }
  const size_t uni = ca.size() + cb.size() - common;
  if (uni == 0) return 1.0;
  // Blend Jaccard with the overlap coefficient so that containment
  // ("POLine" ⊃ "Line") is rewarded: element names in B2B standards are
  // frequently qualified supersets of each other.
  const double jaccard =
      static_cast<double>(common) / static_cast<double>(uni);
  const double overlap = static_cast<double>(common) /
                         static_cast<double>(std::min(ca.size(), cb.size()));
  return 0.65 * jaccard + 0.35 * overlap;
}

double NameSimilarity(std::string_view a, std::string_view b,
                      const Thesaurus& thesaurus) {
  const auto ta = TokenizeName(a);
  const auto tb = TokenizeName(b);
  const double token = TokenSetSimilarity(ta, tb, thesaurus);
  const double tri = TrigramSimilarity(a, b);
  const double lev = LevenshteinSimilarity(ToLower(a), ToLower(b));
  return 0.55 * token + 0.25 * tri + 0.20 * lev;
}

}  // namespace uxm
