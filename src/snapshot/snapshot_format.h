// On-disk snapshot format (ROADMAP item 1): one relocatable, mmap-able
// file holding every prepared schema pair's flat evaluation arrays and
// every corpus document's annotated form, so a process restart restores
// serving state by mapping the file instead of re-running matching,
// top-h generation, block-tree construction, and document annotation.
//
// Layout (all integers little-endian; the writer refuses to run on a
// big-endian host rather than emit a byte-swapped file):
//
//   [0, 64)                SnapshotHeader (magic, version, section count,
//                          file size, directory checksum)
//   [64, 64 + 40 * n)      n SectionEntry records — the section directory
//   ...                    sections, each 64-byte aligned, zero padding
//                          between; the file ends exactly at the last
//                          section's end rounded up to 64 (shrink-to-fit:
//                          no slack pages are ever written)
//
// Every section carries its own FNV-1a 64 checksum in the directory, and
// the directory itself is checksummed in the header, so the loader can
// name exactly which section is damaged before touching its bytes.
//
// Two classes of section:
//   - raw array sections (kPairMapSourceFor .. kPairTreeBlockMappings):
//     fixed-width element arrays the loader never copies — the 64-byte
//     section alignment guarantees element alignment, and the flat
//     structs' ConstSpans point straight into the mapping;
//   - blob sections (schemas, matching, docs, meta): variable-length
//     records parsed through a bounds-checked reader into ordinary heap
//     objects (they are small and pointer-rich; zero-copy buys nothing).
#ifndef UXM_SNAPSHOT_SNAPSHOT_FORMAT_H_
#define UXM_SNAPSHOT_SNAPSHOT_FORMAT_H_

#include <cstdint>

namespace uxm {

inline constexpr char kSnapshotMagic[8] = {'U', 'X', 'M', 'S',
                                           'N', 'A', 'P', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint64_t kSnapshotAlignment = 64;

/// \brief Fixed 64-byte file header.
struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint64_t directory_offset;  ///< Always 64 in version 1.
  uint64_t file_size;         ///< Total bytes; must equal the real size.
  /// FNV-1a 64 over the whole directory (section_count * 40 bytes).
  uint64_t directory_checksum;
  uint8_t reserved[24];
};
static_assert(sizeof(SnapshotHeader) == 64, "header must be 64 bytes");

/// \brief One directory record: where a section lives and what it is.
/// `owner` scopes per-pair sections to a pair index and per-document
/// sections to a document index (0 for the singleton kMeta).
struct SectionEntry {
  uint32_t kind;
  uint32_t owner;
  uint64_t offset;
  uint64_t length;    ///< Payload bytes (excludes alignment padding).
  uint64_t checksum;  ///< FNV-1a 64 over the payload.
  uint64_t reserved;
};
static_assert(sizeof(SectionEntry) == 40, "directory entry must be 40 bytes");

/// Section kinds. Per-pair kinds repeat once per pair (owner = pair
/// index); per-document kinds once per corpus document (owner = doc
/// index).
enum SnapshotSectionKind : uint32_t {
  /// Singleton: u32 pair_count, u32 doc_count, i32 default_pair (-1 =
  /// none), u32 reserved.
  kMeta = 1,

  /// Schema blob: u32 name_len + bytes; u32 node_count; per node in id
  /// order: i32 parent (-1 for root), u8 flags (bit0 repeatable, bit1
  /// optional, bit2 leaf_has_text), u32 name_len + bytes.
  kPairSourceSchema = 2,
  kPairTargetSchema = 3,
  /// Matching blob: u32 count; per correspondence: i32 source,
  /// i32 target, f64 score.
  kPairMatching = 4,
  /// u32 num_mappings, u32 num_targets.
  kPairTableMeta = 5,

  // Raw array sections (zero-copy; element type in parentheses).
  kPairMapSourceFor = 6,       ///< (i32) num_mappings * num_targets
  kPairMapProbability = 7,     ///< (f64) num_mappings
  kPairTreeNodeBlockBegin = 8,  ///< (u32) num_targets + 1
  kPairTreeSelfAnchored = 9,    ///< (u8)  num_targets
  kPairTreeCorrBegin = 10,      ///< (u32) num_blocks + 1
  kPairTreeMapBegin = 11,       ///< (u32) num_blocks + 1
  kPairTreeCorrTarget = 12,     ///< (i32) total block correspondences
  kPairTreeCorrSource = 13,     ///< (i32) total block correspondences
  kPairTreeBlockMappings = 14,  ///< (i32) total block mapping refs

  // The pair's shared work-unit order. Copied on load (MappingOrder
  // holds plain vectors — the arrays are tiny next to the mapping
  // matrix), kept in the file so a snapshot is a complete record of the
  // preparation.
  kPairOrderByProbability = 15,  ///< (i32) num_mappings
  kPairOrderResidual = 16,       ///< (f64) num_mappings

  /// Doc blob: u32 pair_index, u32 name_len + bytes.
  kDocMeta = 17,
  /// Doc nodes blob: u32 node_count; per node in id (pre-)order:
  /// i32 parent (-1 for root), u32 label_len + bytes, u32 text_len +
  /// bytes.
  kDocNodes = 18,
  /// (i32) doc node count: the annotated form — the schema element each
  /// document node instantiates (-1 = unbound), exactly
  /// AnnotatedDocument::ElementOf.
  kDocElements = 19,
};

/// Human-readable section-kind name ("map_source_for", "doc_nodes", ...)
/// used in damage reports and the uxm_snapshot CLI; "unknown" for
/// unrecognized kinds.
const char* SnapshotSectionKindName(uint32_t kind);

/// `offset` rounded up to the next multiple of kSnapshotAlignment.
inline uint64_t AlignSnapshotOffset(uint64_t offset) {
  return (offset + kSnapshotAlignment - 1) & ~(kSnapshotAlignment - 1);
}

}  // namespace uxm

#endif  // UXM_SNAPSHOT_SNAPSHOT_FORMAT_H_
