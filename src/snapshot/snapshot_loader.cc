#include "snapshot/snapshot_loader.h"

#include <cstring>
#include <map>
#include <utility>

#include "common/checksum.h"
#include "common/fault_injection.h"
#include "snapshot/snapshot_format.h"

namespace uxm {

namespace {

Status Damaged(uint32_t kind, uint32_t owner, const std::string& what) {
  return Status::DataLoss(std::string("snapshot section '") +
                          SnapshotSectionKindName(kind) + "' (owner " +
                          std::to_string(owner) + "): " + what);
}

Status Damaged(const SectionEntry& e, const std::string& what) {
  return Damaged(e.kind, e.owner, what);
}

/// Bounds-checked cursor over one blob section. Every Read returns false
/// instead of walking past the payload, so a truncated or bit-flipped
/// length can never cause an out-of-bounds read.
class BlobReader {
 public:
  BlobReader(const uint8_t* data, size_t size) : p_(data), remaining_(size) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }

  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len) || len > remaining_) return false;
    out->assign(reinterpret_cast<const char*>(p_), len);
    p_ += len;
    remaining_ -= len;
    return true;
  }

  bool AtEnd() const { return remaining_ == 0; }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (n > remaining_) return false;
    std::memcpy(out, p_, n);
    p_ += n;
    remaining_ -= n;
    return true;
  }

  const uint8_t* p_;
  size_t remaining_;
};

/// Header + directory, validated far enough to enumerate sections. The
/// caller decides how much per-section damage it tolerates (LoadSnapshot:
/// none; InspectSnapshot: reports it).
struct OpenedSnapshot {
  std::shared_ptr<const MappedFile> file;
  SnapshotHeader header;
  std::vector<SectionEntry> directory;
  bool directory_ok = false;
};

Result<OpenedSnapshot> OpenSnapshot(const std::string& path) {
  OpenedSnapshot opened;
  {
    UXM_ASSIGN_OR_RETURN(MappedFile mapped, MappedFile::Open(path));
    opened.file = std::make_shared<const MappedFile>(std::move(mapped));
  }
  const MappedFile& file = *opened.file;
  if (file.size() < sizeof(SnapshotHeader)) {
    return Status::DataLoss("snapshot header: file is " +
                            std::to_string(file.size()) +
                            " bytes, smaller than the 64-byte header");
  }
  std::memcpy(&opened.header, file.data(), sizeof(SnapshotHeader));
  const SnapshotHeader& h = opened.header;
  if (std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::DataLoss("snapshot header: bad magic (not a snapshot?)");
  }
  if (h.version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot header: unsupported format version " +
        std::to_string(h.version) + " (this build reads version " +
        std::to_string(kSnapshotVersion) + ")");
  }
  if (h.directory_offset != sizeof(SnapshotHeader)) {
    return Status::DataLoss("snapshot header: directory offset " +
                            std::to_string(h.directory_offset) +
                            " is not " + std::to_string(sizeof(SnapshotHeader)));
  }
  if (h.file_size != file.size()) {
    return Status::DataLoss(
        "snapshot header: recorded file size " + std::to_string(h.file_size) +
        " != actual " + std::to_string(file.size()) + " (truncated?)");
  }
  const uint64_t dir_bytes =
      static_cast<uint64_t>(h.section_count) * sizeof(SectionEntry);
  if (h.section_count == 0 ||
      dir_bytes > file.size() - sizeof(SnapshotHeader)) {
    return Status::DataLoss("snapshot header: section count " +
                            std::to_string(h.section_count) +
                            " does not fit in the file");
  }
  opened.directory.resize(h.section_count);
  std::memcpy(opened.directory.data(), file.data() + h.directory_offset,
              dir_bytes);
  opened.directory_ok =
      Fnv1a64(opened.directory.data(), dir_bytes) == h.directory_checksum;
  return opened;
}

/// Range-checks one directory entry against the mapped file.
Status CheckSectionRange(const MappedFile& file, const SectionEntry& e) {
  if (e.offset > file.size() || e.length > file.size() - e.offset) {
    return Damaged(e, "extends past the end of the file (offset " +
                          std::to_string(e.offset) + ", length " +
                          std::to_string(e.length) + ")");
  }
  return Status::OK();
}

/// Cuts a typed zero-copy span out of a raw array section.
template <typename T>
Status RawSpan(const MappedFile& file, const SectionEntry& e,
               ConstSpan<T>* out) {
  if (e.length % sizeof(T) != 0) {
    return Damaged(e, "length " + std::to_string(e.length) +
                          " is not a multiple of the element size");
  }
  if (e.offset % alignof(T) != 0) {
    return Damaged(e, "offset is not aligned for its element type");
  }
  *out = ConstSpan<T>(reinterpret_cast<const T*>(file.data() + e.offset),
                      e.length / sizeof(T));
  return Status::OK();
}

Result<std::shared_ptr<const Schema>> ParseSchema(const MappedFile& file,
                                                  const SectionEntry& e) {
  BlobReader r(file.data() + e.offset, e.length);
  std::string schema_name;
  uint32_t node_count = 0;
  if (!r.ReadString(&schema_name) || !r.ReadU32(&node_count)) {
    return Damaged(e, "truncated schema record");
  }
  if (node_count == 0 || node_count > e.length) {
    return Damaged(e, "implausible node count " + std::to_string(node_count));
  }
  auto schema = std::make_shared<Schema>(std::move(schema_name));
  for (uint32_t i = 0; i < node_count; ++i) {
    int32_t parent = 0;
    uint8_t flags = 0;
    std::string name;
    if (!r.ReadI32(&parent) || !r.ReadU8(&flags) || !r.ReadString(&name)) {
      return Damaged(e, "truncated at schema node " + std::to_string(i));
    }
    if (i == 0) {
      if (parent != kInvalidSchemaNode) {
        return Damaged(e, "root node has a parent");
      }
      schema->AddRoot(name);
    } else {
      if (parent < 0 || static_cast<uint32_t>(parent) >= i) {
        return Damaged(e, "schema node " + std::to_string(i) +
                              " has out-of-order parent " +
                              std::to_string(parent));
      }
      schema->AddChild(parent, name, (flags & 1) != 0, (flags & 2) != 0);
    }
    if ((flags & 4) == 0) {
      schema->set_leaf_has_text(static_cast<SchemaNodeId>(i), false);
    }
  }
  if (!r.AtEnd()) return Damaged(e, "trailing bytes after last schema node");
  schema->Finalize();
  return std::shared_ptr<const Schema>(std::move(schema));
}

Status ParseMatching(const MappedFile& file, const SectionEntry& e,
                     const Schema* source, const Schema* target,
                     SchemaMatching* out) {
  BlobReader r(file.data() + e.offset, e.length);
  uint32_t count = 0;
  if (!r.ReadU32(&count)) return Damaged(e, "truncated matching record");
  *out = SchemaMatching(source, target);
  for (uint32_t i = 0; i < count; ++i) {
    int32_t src = 0;
    int32_t tgt = 0;
    double score = 0.0;
    if (!r.ReadI32(&src) || !r.ReadI32(&tgt) || !r.ReadF64(&score)) {
      return Damaged(e, "truncated at correspondence " + std::to_string(i));
    }
    const Status added = out->Add(src, tgt, score);
    if (!added.ok()) {
      return Damaged(e, "correspondence " + std::to_string(i) +
                            " rejected: " + added.message());
    }
  }
  if (!r.AtEnd()) return Damaged(e, "trailing bytes after last correspondence");
  return Status::OK();
}

Result<std::shared_ptr<const Document>> ParseDocument(const MappedFile& file,
                                                      const SectionEntry& e) {
  BlobReader r(file.data() + e.offset, e.length);
  uint32_t node_count = 0;
  if (!r.ReadU32(&node_count)) return Damaged(e, "truncated document record");
  if (node_count == 0 || node_count > e.length) {
    return Damaged(e, "implausible node count " + std::to_string(node_count));
  }
  auto doc = std::make_shared<Document>();
  for (uint32_t i = 0; i < node_count; ++i) {
    int32_t parent = 0;
    std::string label;
    std::string text;
    if (!r.ReadI32(&parent) || !r.ReadString(&label) ||
        !r.ReadString(&text)) {
      return Damaged(e, "truncated at document node " + std::to_string(i));
    }
    if (i == 0) {
      if (parent != kInvalidDocNode) {
        return Damaged(e, "root node has a parent");
      }
      doc->AddRoot(label);
      if (!text.empty()) doc->SetText(0, text);
    } else {
      if (parent < 0 || static_cast<uint32_t>(parent) >= i) {
        return Damaged(e, "document node " + std::to_string(i) +
                              " has out-of-order parent " +
                              std::to_string(parent));
      }
      doc->AddChild(parent, label, text);
    }
  }
  if (!r.AtEnd()) return Damaged(e, "trailing bytes after last document node");
  doc->Finalize();
  return std::shared_ptr<const Document>(std::move(doc));
}

/// begin[] arrays must start at 0, never decrease, and end at `total` —
/// the kernel indexes the co-arrays through them unchecked.
Status CheckBeginArray(const SectionEntry& e, ConstSpan<uint32_t> begin,
                       uint64_t expected_size, uint64_t total) {
  if (begin.size() != expected_size) {
    return Damaged(e, "has " + std::to_string(begin.size()) +
                          " entries, expected " +
                          std::to_string(expected_size));
  }
  if (begin[0] != 0) return Damaged(e, "does not start at 0");
  for (size_t i = 1; i < begin.size(); ++i) {
    if (begin[i] < begin[i - 1]) {
      return Damaged(e, "decreases at entry " + std::to_string(i));
    }
  }
  if (begin[begin.size() - 1] != total) {
    return Damaged(e, "ends at " + std::to_string(begin[begin.size() - 1]) +
                          ", expected " + std::to_string(total));
  }
  return Status::OK();
}

}  // namespace

Result<LoadedSnapshot> LoadSnapshot(const std::string& path) {
  UXM_ASSIGN_OR_RETURN(OpenedSnapshot opened, OpenSnapshot(path));
  const MappedFile& file = *opened.file;
  if (!opened.directory_ok) {
    return Status::DataLoss("snapshot directory: checksum mismatch");
  }

  // Verify every payload before parsing any, and index sections by
  // (kind, owner): all subsequent lookups are against verified bytes.
  std::map<std::pair<uint32_t, uint32_t>, const SectionEntry*> index;
  for (const SectionEntry& e : opened.directory) {
    UXM_INJECT_FAULT(FaultSite::kSnapshotSection);
    UXM_RETURN_NOT_OK(CheckSectionRange(file, e));
    if (Fnv1a64(file.data() + e.offset, e.length) != e.checksum) {
      return Damaged(e, "checksum mismatch");
    }
    if (SnapshotSectionKindName(e.kind) == std::string("unknown")) {
      return Damaged(e, "unknown section kind " + std::to_string(e.kind));
    }
    if (!index.emplace(std::make_pair(e.kind, e.owner), &e).second) {
      return Damaged(e, "duplicate section");
    }
  }

  const auto find = [&index](uint32_t kind,
                             uint32_t owner) -> const SectionEntry* {
    const auto it = index.find(std::make_pair(kind, owner));
    return it == index.end() ? nullptr : it->second;
  };
  const auto require = [&find](uint32_t kind, uint32_t owner,
                               const SectionEntry** out) -> Status {
    *out = find(kind, owner);
    if (*out == nullptr) return Damaged(kind, owner, "missing section");
    return Status::OK();
  };

  const SectionEntry* meta = nullptr;
  UXM_RETURN_NOT_OK(require(kMeta, 0, &meta));
  uint32_t pair_count = 0;
  uint32_t doc_count = 0;
  int32_t default_pair = -1;
  {
    BlobReader r(file.data() + meta->offset, meta->length);
    uint32_t reserved = 0;
    if (!r.ReadU32(&pair_count) || !r.ReadU32(&doc_count) ||
        !r.ReadI32(&default_pair) || !r.ReadU32(&reserved) || !r.AtEnd()) {
      return Damaged(*meta, "malformed meta record");
    }
    if (default_pair < -1 ||
        default_pair >= static_cast<int32_t>(pair_count)) {
      return Damaged(*meta, "default pair " + std::to_string(default_pair) +
                                " out of range");
    }
    const uint64_t expected = 1 + static_cast<uint64_t>(pair_count) * 15 +
                              static_cast<uint64_t>(doc_count) * 3;
    if (expected != opened.header.section_count) {
      return Damaged(*meta,
                     "section count " +
                         std::to_string(opened.header.section_count) +
                         " does not match " + std::to_string(pair_count) +
                         " pairs + " + std::to_string(doc_count) + " docs");
    }
  }

  LoadedSnapshot snapshot;
  snapshot.file = opened.file;
  snapshot.file_bytes = file.size();
  snapshot.section_count = opened.header.section_count;
  snapshot.default_pair = default_pair;

  for (uint32_t p = 0; p < pair_count; ++p) {
    LoadedPair pair;
    const SectionEntry* e = nullptr;

    UXM_RETURN_NOT_OK(require(kPairSourceSchema, p, &e));
    UXM_ASSIGN_OR_RETURN(pair.source, ParseSchema(file, *e));
    UXM_RETURN_NOT_OK(require(kPairTargetSchema, p, &e));
    UXM_ASSIGN_OR_RETURN(pair.target, ParseSchema(file, *e));
    UXM_RETURN_NOT_OK(require(kPairMatching, p, &e));
    UXM_RETURN_NOT_OK(ParseMatching(file, *e, pair.source.get(),
                                      pair.target.get(), &pair.matching));

    const SectionEntry* table_meta = nullptr;
    UXM_RETURN_NOT_OK(require(kPairTableMeta, p, &table_meta));
    uint32_t num_mappings = 0;
    uint32_t num_targets = 0;
    {
      BlobReader r(file.data() + table_meta->offset, table_meta->length);
      if (!r.ReadU32(&num_mappings) || !r.ReadU32(&num_targets) ||
          !r.AtEnd()) {
        return Damaged(*table_meta, "malformed table meta record");
      }
      if (num_targets != static_cast<uint32_t>(pair.target->size())) {
        return Damaged(*table_meta,
                       "row stride " + std::to_string(num_targets) +
                           " != target schema size " +
                           std::to_string(pair.target->size()));
      }
    }
    const int32_t source_size = pair.source->size();

    auto flat = std::make_shared<FlatPairIndex>();
    flat->storage = opened.file;
    flat->mappings.num_mappings = num_mappings;
    flat->mappings.num_targets = num_targets;

    UXM_RETURN_NOT_OK(require(kPairMapSourceFor, p, &e));
    UXM_RETURN_NOT_OK(RawSpan(file, *e, &flat->mappings.source_for));
    if (flat->mappings.source_for.size() !=
        static_cast<uint64_t>(num_mappings) * num_targets) {
      return Damaged(*e, "has " +
                             std::to_string(flat->mappings.source_for.size()) +
                             " entries, expected num_mappings * num_targets");
    }
    for (SchemaNodeId s : flat->mappings.source_for) {
      if (s < kInvalidSchemaNode || s >= source_size) {
        return Damaged(*e, "references source element " + std::to_string(s) +
                               " outside the source schema");
      }
    }

    UXM_RETURN_NOT_OK(require(kPairMapProbability, p, &e));
    UXM_RETURN_NOT_OK(RawSpan(file, *e, &flat->mappings.probability));
    if (flat->mappings.probability.size() != num_mappings) {
      return Damaged(*e, "has " +
                             std::to_string(flat->mappings.probability.size()) +
                             " entries, expected one per mapping");
    }

    FlatBlockTree& tree = flat->tree;
    UXM_RETURN_NOT_OK(require(kPairTreeNodeBlockBegin, p, &e));
    UXM_RETURN_NOT_OK(RawSpan(file, *e, &tree.node_block_begin));
    const SectionEntry* corr_begin_e = nullptr;
    UXM_RETURN_NOT_OK(require(kPairTreeCorrBegin, p, &corr_begin_e));
    UXM_RETURN_NOT_OK(RawSpan(file, *corr_begin_e, &tree.corr_begin));
    const SectionEntry* map_begin_e = nullptr;
    UXM_RETURN_NOT_OK(require(kPairTreeMapBegin, p, &map_begin_e));
    UXM_RETURN_NOT_OK(RawSpan(file, *map_begin_e, &tree.map_begin));
    const SectionEntry* corr_target_e = nullptr;
    UXM_RETURN_NOT_OK(require(kPairTreeCorrTarget, p, &corr_target_e));
    UXM_RETURN_NOT_OK(RawSpan(file, *corr_target_e, &tree.corr_target));
    const SectionEntry* corr_source_e = nullptr;
    UXM_RETURN_NOT_OK(require(kPairTreeCorrSource, p, &corr_source_e));
    UXM_RETURN_NOT_OK(RawSpan(file, *corr_source_e, &tree.corr_source));
    const SectionEntry* block_map_e = nullptr;
    UXM_RETURN_NOT_OK(require(kPairTreeBlockMappings, p, &block_map_e));
    UXM_RETURN_NOT_OK(RawSpan(file, *block_map_e, &tree.block_mappings));
    const SectionEntry* anchored_e = nullptr;
    UXM_RETURN_NOT_OK(require(kPairTreeSelfAnchored, p, &anchored_e));
    UXM_RETURN_NOT_OK(RawSpan(file, *anchored_e, &tree.self_anchored));

    if (tree.node_block_begin.empty()) {
      // Algorithm-3-only pair: every tree section must be empty.
      if (!tree.corr_begin.empty() || !tree.map_begin.empty() ||
          !tree.corr_target.empty() || !tree.corr_source.empty() ||
          !tree.block_mappings.empty() || !tree.self_anchored.empty()) {
        return Damaged(*e, "empty, but other block-tree sections are not");
      }
    } else {
      const uint64_t num_blocks = tree.corr_begin.empty()
                                      ? 0
                                      : tree.corr_begin.size() - 1;
      UXM_RETURN_NOT_OK(CheckBeginArray(*e, tree.node_block_begin,
                                          static_cast<uint64_t>(num_targets) +
                                              1,
                                          num_blocks));
      UXM_RETURN_NOT_OK(CheckBeginArray(*corr_begin_e, tree.corr_begin,
                                          num_blocks + 1,
                                          tree.corr_target.size()));
      UXM_RETURN_NOT_OK(CheckBeginArray(*map_begin_e, tree.map_begin,
                                          num_blocks + 1,
                                          tree.block_mappings.size()));
      if (tree.corr_source.size() != tree.corr_target.size()) {
        return Damaged(*corr_source_e,
                       "size differs from its parallel target column");
      }
      for (SchemaNodeId t : tree.corr_target) {
        if (t < 0 || static_cast<uint32_t>(t) >= num_targets) {
          return Damaged(*corr_target_e, "references target element " +
                                             std::to_string(t) +
                                             " outside the target schema");
        }
      }
      for (SchemaNodeId s : tree.corr_source) {
        if (s < 0 || s >= source_size) {
          return Damaged(*corr_source_e, "references source element " +
                                             std::to_string(s) +
                                             " outside the source schema");
        }
      }
      for (MappingId m : tree.block_mappings) {
        if (m < 0 || static_cast<uint32_t>(m) >= num_mappings) {
          return Damaged(*block_map_e, "references mapping " +
                                           std::to_string(m) +
                                           " out of range");
        }
      }
      if (tree.self_anchored.size() != num_targets) {
        return Damaged(*anchored_e,
                       "has " + std::to_string(tree.self_anchored.size()) +
                           " entries, expected one per target element");
      }
    }

    ConstSpan<MappingId> order_ids;
    ConstSpan<double> order_residual;
    const SectionEntry* order_e = nullptr;
    UXM_RETURN_NOT_OK(require(kPairOrderByProbability, p, &order_e));
    UXM_RETURN_NOT_OK(RawSpan(file, *order_e, &order_ids));
    if (order_ids.size() != num_mappings) {
      return Damaged(*order_e, "has " + std::to_string(order_ids.size()) +
                                   " entries, expected one per mapping");
    }
    std::vector<uint8_t> seen(num_mappings, 0);
    for (MappingId m : order_ids) {
      if (m < 0 || static_cast<uint32_t>(m) >= num_mappings ||
          seen[static_cast<size_t>(m)] != 0) {
        return Damaged(*order_e, "is not a permutation of the mapping ids");
      }
      seen[static_cast<size_t>(m)] = 1;
    }
    UXM_RETURN_NOT_OK(require(kPairOrderResidual, p, &e));
    UXM_RETURN_NOT_OK(RawSpan(file, *e, &order_residual));
    if (order_residual.size() != num_mappings) {
      return Damaged(*e, "has " + std::to_string(order_residual.size()) +
                             " entries, expected one per mapping");
    }
    auto order = std::make_shared<MappingOrder>();
    order->by_probability.assign(order_ids.begin(), order_ids.end());
    order->residual_after.assign(order_residual.begin(),
                                 order_residual.end());

    pair.flat = std::move(flat);
    pair.order = std::move(order);
    snapshot.pairs.push_back(std::move(pair));
  }

  for (uint32_t d = 0; d < doc_count; ++d) {
    LoadedDoc doc;
    const SectionEntry* e = nullptr;

    UXM_RETURN_NOT_OK(require(kDocMeta, d, &e));
    {
      BlobReader r(file.data() + e->offset, e->length);
      if (!r.ReadU32(&doc.pair_index) || !r.ReadString(&doc.name) ||
          !r.AtEnd()) {
        return Damaged(*e, "malformed doc meta record");
      }
      // DocumentStore rejects empty names; catch it here so the facade's
      // all-or-nothing load never fails mid-install.
      if (doc.name.empty()) {
        return Damaged(*e, "has an empty document name");
      }
      if (doc.pair_index >= pair_count) {
        return Damaged(*e, "references pair " +
                               std::to_string(doc.pair_index) +
                               " out of range");
      }
    }

    UXM_RETURN_NOT_OK(require(kDocNodes, d, &e));
    UXM_ASSIGN_OR_RETURN(doc.doc, ParseDocument(file, *e));

    UXM_RETURN_NOT_OK(require(kDocElements, d, &e));
    ConstSpan<SchemaNodeId> elements;
    UXM_RETURN_NOT_OK(RawSpan(file, *e, &elements));
    if (elements.size() != static_cast<size_t>(doc.doc->size())) {
      return Damaged(*e, "has " + std::to_string(elements.size()) +
                             " entries for a document of " +
                             std::to_string(doc.doc->size()) + " nodes");
    }
    auto annotated_result = AnnotatedDocument::FromParts(
        doc.doc.get(), snapshot.pairs[doc.pair_index].source.get(),
        std::vector<SchemaNodeId>(elements.begin(), elements.end()));
    if (!annotated_result.ok()) {
      return Damaged(*e, annotated_result.status().message());
    }
    doc.annotated = std::make_shared<const AnnotatedDocument>(
        std::move(annotated_result).value());
    snapshot.documents.push_back(std::move(doc));
  }

  return snapshot;
}

Result<SnapshotInfo> InspectSnapshot(const std::string& path) {
  UXM_ASSIGN_OR_RETURN(OpenedSnapshot opened, OpenSnapshot(path));
  const MappedFile& file = *opened.file;

  SnapshotInfo info;
  info.version = opened.header.version;
  info.file_size = opened.header.file_size;
  info.directory_ok = opened.directory_ok;
  info.sections.reserve(opened.directory.size());
  for (const SectionEntry& e : opened.directory) {
    SnapshotSectionInfo s;
    s.kind = e.kind;
    s.owner = e.owner;
    s.offset = e.offset;
    s.length = e.length;
    s.checksum = e.checksum;
    s.checksum_ok =
        CheckSectionRange(file, e).ok() &&
        Fnv1a64(file.data() + e.offset, e.length) == e.checksum;
    info.sections.push_back(s);
    if (e.kind == kMeta && s.checksum_ok && e.length >= 12) {
      BlobReader r(file.data() + e.offset, e.length);
      r.ReadU32(&info.pair_count);
      r.ReadU32(&info.doc_count);
      r.ReadI32(&info.default_pair);
    }
  }
  return info;
}

}  // namespace uxm
