// Snapshot loader: validates and materializes a snapshot file written by
// WriteSnapshot. The raw flat-array sections are NOT copied — every
// loaded pair's FlatPairIndex spans point straight into the read-only
// mmap, which the LoadedSnapshot (and each pair, via
// FlatPairIndex::storage) keeps alive. Blob sections (schemas, matching,
// documents, order) are parsed into ordinary heap objects through a
// bounds-checked reader.
//
// Every failure is a clean Status — DataLoss naming the damaged section
// for corruption, InvalidArgument/IOError otherwise — never a crash or
// an out-of-bounds read: header, directory, per-section checksums, and
// the structural invariants the evaluation kernel relies on (monotone
// begin arrays, in-range element/mapping ids) are all verified before a
// loaded pair can reach a query.
#ifndef UXM_SNAPSHOT_SNAPSHOT_LOADER_H_
#define UXM_SNAPSHOT_SNAPSHOT_LOADER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "blocktree/flat_block_tree.h"
#include "common/mapped_file.h"
#include "common/status.h"
#include "matching/matching.h"
#include "plan/query_plan.h"
#include "query/annotated_document.h"
#include "xml/document.h"
#include "xml/schema.h"

namespace uxm {

/// \brief One restored schema pair, ready for
/// MakePreparedSchemaPairFromFlatIndex. `matching` references the two
/// materialized schemas; `flat`'s spans view the snapshot mmap.
struct LoadedPair {
  SchemaMatching matching;
  std::shared_ptr<const Schema> source;
  std::shared_ptr<const Schema> target;
  std::shared_ptr<const FlatPairIndex> flat;
  std::shared_ptr<const MappingOrder> order;
};

/// \brief One restored corpus document with its annotation (bound against
/// the source schema of pairs[pair_index]).
struct LoadedDoc {
  std::string name;
  uint32_t pair_index = 0;
  std::shared_ptr<const Document> doc;
  std::shared_ptr<const AnnotatedDocument> annotated;
};

/// \brief A fully validated snapshot. Destroying it (and every pair
/// handed out of it) unmaps the file.
struct LoadedSnapshot {
  std::vector<LoadedPair> pairs;
  std::vector<LoadedDoc> documents;
  int32_t default_pair = -1;  ///< Index into `pairs`, or -1.
  std::shared_ptr<const MappedFile> file;
  uint64_t file_bytes = 0;
  size_t section_count = 0;
};

/// Maps, validates, and materializes the snapshot at `path`.
Result<LoadedSnapshot> LoadSnapshot(const std::string& path);

/// \brief One directory row as reported by InspectSnapshot.
struct SnapshotSectionInfo {
  uint32_t kind = 0;
  uint32_t owner = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;
  bool checksum_ok = false;
};

/// \brief Header + directory summary for the uxm_snapshot CLI.
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t file_size = 0;
  bool directory_ok = false;  ///< Directory checksum matched.
  uint32_t pair_count = 0;    ///< From kMeta (0 if meta is damaged).
  uint32_t doc_count = 0;
  int32_t default_pair = -1;
  std::vector<SnapshotSectionInfo> sections;
};

/// Reads the header and section directory and recomputes every section
/// checksum, without materializing any payload. Fails only when the
/// header or directory is too damaged to enumerate sections; per-section
/// damage is reported via SnapshotSectionInfo::checksum_ok.
Result<SnapshotInfo> InspectSnapshot(const std::string& path);

}  // namespace uxm

#endif  // UXM_SNAPSHOT_SNAPSHOT_LOADER_H_
