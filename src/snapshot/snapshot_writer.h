// Snapshot writer: serializes prepared pairs + corpus documents into the
// versioned, checksummed, mmap-able format of snapshot_format.h. The
// writer reads only load-surviving products (matching, flat index,
// work-unit order, annotated documents) — never the build-time
// PossibleMappingSet/BlockTree — so a pair that was itself loaded from a
// snapshot re-saves losslessly.
#ifndef UXM_SNAPSHOT_SNAPSHOT_WRITER_H_
#define UXM_SNAPSHOT_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "plan/prepared_pair.h"
#include "query/annotated_document.h"
#include "xml/document.h"

namespace uxm {

/// \brief One corpus document to serialize: its tree, its annotated form,
/// and the index (into SnapshotWriteInput::pairs) of the pair it is
/// registered under.
struct SnapshotDocInput {
  std::string name;
  uint32_t pair_index = 0;
  const Document* doc = nullptr;
  const AnnotatedDocument* annotated = nullptr;
};

/// \brief Everything one snapshot records.
struct SnapshotWriteInput {
  std::vector<std::shared_ptr<const PreparedSchemaPair>> pairs;
  std::vector<SnapshotDocInput> documents;
  /// Index into `pairs` of the facade's default pair, or -1.
  int32_t default_pair = -1;
};

/// \brief What a write produced (for SnapshotStats).
struct SnapshotWriteResult {
  uint64_t file_bytes = 0;
  size_t sections = 0;
};

/// Serializes `input` to `path` (atomically: written to a unique
/// "<path>.tmp.*" temp file in the same directory, fsync'd, renamed
/// over, and the directory fsync'd — a crash leaves either the old
/// snapshot or the new one, never a partial file). IOError on
/// filesystem failure; InvalidArgument on malformed input (null
/// pointers, out-of-range pair_index or default_pair, a pair with no
/// flat index).
Result<SnapshotWriteResult> WriteSnapshot(const std::string& path,
                                          const SnapshotWriteInput& input);

}  // namespace uxm

#endif  // UXM_SNAPSHOT_SNAPSHOT_WRITER_H_
