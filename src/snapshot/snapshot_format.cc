#include "snapshot/snapshot_format.h"

namespace uxm {

const char* SnapshotSectionKindName(uint32_t kind) {
  switch (kind) {
    case kMeta:
      return "meta";
    case kPairSourceSchema:
      return "source_schema";
    case kPairTargetSchema:
      return "target_schema";
    case kPairMatching:
      return "matching";
    case kPairTableMeta:
      return "table_meta";
    case kPairMapSourceFor:
      return "map_source_for";
    case kPairMapProbability:
      return "map_probability";
    case kPairTreeNodeBlockBegin:
      return "tree_node_block_begin";
    case kPairTreeSelfAnchored:
      return "tree_self_anchored";
    case kPairTreeCorrBegin:
      return "tree_corr_begin";
    case kPairTreeMapBegin:
      return "tree_map_begin";
    case kPairTreeCorrTarget:
      return "tree_corr_target";
    case kPairTreeCorrSource:
      return "tree_corr_source";
    case kPairTreeBlockMappings:
      return "tree_block_mappings";
    case kPairOrderByProbability:
      return "order_by_probability";
    case kPairOrderResidual:
      return "order_residual";
    case kDocMeta:
      return "doc_meta";
    case kDocNodes:
      return "doc_nodes";
    case kDocElements:
      return "doc_elements";
    default:
      return "unknown";
  }
}

}  // namespace uxm
