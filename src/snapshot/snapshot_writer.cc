#include "snapshot/snapshot_writer.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "blocktree/flat_block_tree.h"
#include "common/checksum.h"
#include "snapshot/snapshot_format.h"

namespace uxm {

namespace {

/// One section being assembled: its directory identity plus the owned
/// payload bytes (raw arrays are copied here once at save time — saving
/// is the cold path; loading is the one that must not copy).
struct PendingSection {
  uint32_t kind = 0;
  uint32_t owner = 0;
  std::vector<uint8_t> payload;
};

void AppendBytes(std::vector<uint8_t>* out, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  AppendBytes(out, &v, sizeof(v));
}

void AppendI32(std::vector<uint8_t>* out, int32_t v) {
  AppendBytes(out, &v, sizeof(v));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  AppendBytes(out, &v, sizeof(v));
}

void AppendString(std::vector<uint8_t>* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  AppendBytes(out, s.data(), s.size());
}

template <typename T>
PendingSection ArraySection(uint32_t kind, uint32_t owner,
                            ConstSpan<T> span) {
  PendingSection s;
  s.kind = kind;
  s.owner = owner;
  AppendBytes(&s.payload, span.data(), span.size() * sizeof(T));
  return s;
}

std::vector<uint8_t> SerializeSchema(const Schema& schema) {
  std::vector<uint8_t> blob;
  AppendString(&blob, schema.schema_name());
  AppendU32(&blob, static_cast<uint32_t>(schema.size()));
  for (const SchemaNode& node : schema.nodes()) {
    AppendI32(&blob, node.parent);
    uint8_t flags = 0;
    if (node.repeatable) flags |= 1;
    if (node.optional) flags |= 2;
    if (node.leaf_has_text) flags |= 4;
    AppendBytes(&blob, &flags, 1);
    AppendString(&blob, node.name);
  }
  return blob;
}

std::vector<uint8_t> SerializeMatching(const SchemaMatching& matching) {
  std::vector<uint8_t> blob;
  AppendU32(&blob, static_cast<uint32_t>(matching.size()));
  for (const Correspondence& c : matching.correspondences()) {
    AppendI32(&blob, c.source);
    AppendI32(&blob, c.target);
    AppendF64(&blob, c.score);
  }
  return blob;
}

std::vector<uint8_t> SerializeDocNodes(const Document& doc) {
  std::vector<uint8_t> blob;
  AppendU32(&blob, static_cast<uint32_t>(doc.size()));
  for (const DocNode& node : doc.nodes()) {
    AppendI32(&blob, node.parent);
    AppendString(&blob, node.label);
    AppendString(&blob, node.text);
  }
  return blob;
}

bool HostIsLittleEndian() {
  const uint16_t probe = 1;
  unsigned char first;
  std::memcpy(&first, &probe, 1);
  return first == 1;
}

}  // namespace

Result<SnapshotWriteResult> WriteSnapshot(const std::string& path,
                                          const SnapshotWriteInput& input) {
  if (!HostIsLittleEndian()) {
    return Status::Internal(
        "snapshot format is little-endian; refusing to write byte-swapped "
        "sections on a big-endian host");
  }
  if (input.default_pair < -1 ||
      input.default_pair >= static_cast<int32_t>(input.pairs.size())) {
    return Status::InvalidArgument("default_pair index out of range");
  }

  std::vector<PendingSection> sections;
  {
    PendingSection meta;
    meta.kind = kMeta;
    AppendU32(&meta.payload, static_cast<uint32_t>(input.pairs.size()));
    AppendU32(&meta.payload, static_cast<uint32_t>(input.documents.size()));
    AppendI32(&meta.payload, input.default_pair);
    AppendU32(&meta.payload, 0);  // reserved
    sections.push_back(std::move(meta));
  }

  for (size_t i = 0; i < input.pairs.size(); ++i) {
    const auto& pair = input.pairs[i];
    const auto owner = static_cast<uint32_t>(i);
    if (pair == nullptr || pair->flat == nullptr || pair->order == nullptr) {
      return Status::InvalidArgument("pair " + std::to_string(i) +
                                     " has no flat index / order");
    }
    if (pair->source() == nullptr || pair->target() == nullptr) {
      return Status::InvalidArgument("pair " + std::to_string(i) +
                                     " references null schemas");
    }
    const FlatPairIndex& flat = *pair->flat;

    PendingSection source{kPairSourceSchema, owner,
                          SerializeSchema(*pair->source())};
    PendingSection target{kPairTargetSchema, owner,
                          SerializeSchema(*pair->target())};
    PendingSection matching{kPairMatching, owner,
                            SerializeMatching(pair->matching)};
    sections.push_back(std::move(source));
    sections.push_back(std::move(target));
    sections.push_back(std::move(matching));

    PendingSection table_meta;
    table_meta.kind = kPairTableMeta;
    table_meta.owner = owner;
    AppendU32(&table_meta.payload, flat.mappings.num_mappings);
    AppendU32(&table_meta.payload, flat.mappings.num_targets);
    sections.push_back(std::move(table_meta));

    sections.push_back(
        ArraySection(kPairMapSourceFor, owner, flat.mappings.source_for));
    sections.push_back(
        ArraySection(kPairMapProbability, owner, flat.mappings.probability));
    sections.push_back(ArraySection(kPairTreeNodeBlockBegin, owner,
                                    flat.tree.node_block_begin));
    sections.push_back(
        ArraySection(kPairTreeSelfAnchored, owner, flat.tree.self_anchored));
    sections.push_back(
        ArraySection(kPairTreeCorrBegin, owner, flat.tree.corr_begin));
    sections.push_back(
        ArraySection(kPairTreeMapBegin, owner, flat.tree.map_begin));
    sections.push_back(
        ArraySection(kPairTreeCorrTarget, owner, flat.tree.corr_target));
    sections.push_back(
        ArraySection(kPairTreeCorrSource, owner, flat.tree.corr_source));
    sections.push_back(ArraySection(kPairTreeBlockMappings, owner,
                                    flat.tree.block_mappings));
    sections.push_back(ArraySection(
        kPairOrderByProbability, owner,
        ConstSpan<MappingId>(pair->order->by_probability.data(),
                             pair->order->by_probability.size())));
    sections.push_back(ArraySection(
        kPairOrderResidual, owner,
        ConstSpan<double>(pair->order->residual_after.data(),
                          pair->order->residual_after.size())));
  }

  for (size_t i = 0; i < input.documents.size(); ++i) {
    const SnapshotDocInput& doc = input.documents[i];
    const auto owner = static_cast<uint32_t>(i);
    if (doc.doc == nullptr || doc.annotated == nullptr) {
      return Status::InvalidArgument("document " + std::to_string(i) +
                                     " has null doc/annotation");
    }
    if (doc.name.empty()) {
      // The loader (and DocumentStore) reject empty names; refuse to
      // emit a file that can never load.
      return Status::InvalidArgument("document " + std::to_string(i) +
                                     " has an empty name");
    }
    if (doc.pair_index >= input.pairs.size()) {
      return Status::InvalidArgument("document '" + doc.name +
                                     "' references pair index " +
                                     std::to_string(doc.pair_index) +
                                     " out of range");
    }

    PendingSection meta;
    meta.kind = kDocMeta;
    meta.owner = owner;
    AppendU32(&meta.payload, doc.pair_index);
    AppendString(&meta.payload, doc.name);
    sections.push_back(std::move(meta));

    PendingSection nodes{kDocNodes, owner, SerializeDocNodes(*doc.doc)};
    sections.push_back(std::move(nodes));

    PendingSection elements;
    elements.kind = kDocElements;
    elements.owner = owner;
    for (DocNodeId n = 0; n < doc.doc->size(); ++n) {
      AppendI32(&elements.payload, doc.annotated->ElementOf(n));
    }
    sections.push_back(std::move(elements));
  }

  // Layout: header, directory, then sections at 64-byte boundaries. The
  // file ends at the last payload's end rounded up to the alignment —
  // shrink-to-fit, nothing preallocated.
  SnapshotHeader header;
  std::memset(&header, 0, sizeof(header));
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.version = kSnapshotVersion;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.directory_offset = sizeof(SnapshotHeader);

  std::vector<SectionEntry> directory(sections.size());
  uint64_t cursor = sizeof(SnapshotHeader) +
                    static_cast<uint64_t>(sections.size()) *
                        sizeof(SectionEntry);
  for (size_t i = 0; i < sections.size(); ++i) {
    cursor = AlignSnapshotOffset(cursor);
    SectionEntry& entry = directory[i];
    entry.kind = sections[i].kind;
    entry.owner = sections[i].owner;
    entry.offset = cursor;
    entry.length = sections[i].payload.size();
    entry.checksum =
        Fnv1a64(sections[i].payload.data(), sections[i].payload.size());
    entry.reserved = 0;
    cursor += entry.length;
  }
  header.file_size = AlignSnapshotOffset(cursor);
  header.directory_checksum =
      Fnv1a64(directory.data(), directory.size() * sizeof(SectionEntry));

  // A unique temp name per write (mkstemp in the target directory, so
  // the rename below never crosses a filesystem) keeps concurrent
  // writers to the same path from interleaving into one temp file.
  std::string tmp_path = path + ".tmp.XXXXXX";
  int fd = ::mkstemp(tmp_path.data());
  if (fd < 0) {
    const int err = errno;
    return Status::IOError("cannot create temp file for '" + path +
                           "': " + std::strerror(err));
  }
  ::fchmod(fd, 0644);  // mkstemp's 0600 is stingier than a plain create
  const auto fail = [&](const std::string& what) {
    const int err = errno;
    if (fd >= 0) ::close(fd);
    std::remove(tmp_path.c_str());
    return Status::IOError(what + " '" + tmp_path +
                           "' failed: " + std::strerror(err));
  };
  uint64_t at = 0;
  const auto write_bytes = [&](const void* data, size_t len) -> bool {
    const char* p = static_cast<const char*>(data);
    size_t left = len;
    while (left > 0) {
      const ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    at += len;
    return true;
  };
  const auto pad_to = [&](uint64_t offset) -> bool {
    static const char zeros[kSnapshotAlignment] = {};
    while (at < offset) {
      const uint64_t n = std::min<uint64_t>(offset - at, sizeof(zeros));
      if (!write_bytes(zeros, n)) return false;
    }
    return true;
  };
  bool ok = write_bytes(&header, sizeof(header)) &&
            write_bytes(directory.data(),
                        directory.size() * sizeof(SectionEntry));
  for (size_t i = 0; ok && i < sections.size(); ++i) {
    ok = pad_to(directory[i].offset) &&
         write_bytes(sections[i].payload.data(), sections[i].payload.size());
  }
  ok = ok && pad_to(header.file_size);
  if (!ok) return fail("write to");
  // Flush the data to stable storage before the rename: rename is atomic
  // in the namespace but unordered against writeback, so a crash could
  // otherwise land an empty file over a previously good snapshot.
  if (::fsync(fd) != 0) return fail("fsync of");
  if (::close(fd) != 0) {
    fd = -1;
    return fail("close of");
  }
  fd = -1;
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp_path.c_str());
    return Status::IOError("rename '" + tmp_path + "' -> '" + path +
                           "' failed: " + std::strerror(err));
  }
  {
    // Persist the rename itself: without a directory fsync the new
    // directory entry can be lost in a crash even though the data is on
    // disk.
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos
            ? std::string(".")
            : (slash == 0 ? std::string("/") : path.substr(0, slash));
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0 || ::fsync(dfd) != 0) {
      const int err = errno;
      if (dfd >= 0) ::close(dfd);
      return Status::IOError("fsync of directory '" + dir +
                             "' failed: " + std::strerror(err));
    }
    ::close(dfd);
  }

  SnapshotWriteResult result;
  result.file_bytes = header.file_size;
  result.sections = sections.size();
  return result;
}

}  // namespace uxm
